"""The paper's policy: timestamp-ordered conflict deferral.

A behavior-preserving extraction of the decision logic that previously
lived inline in ``CacheController._decide``: with
``contention_policy="timestamp"`` (the default), run fingerprints are
bit-identical to the pre-refactor controller.
"""

from __future__ import annotations

from repro.coherence.messages import beats
from repro.policies.base import (ConflictContext, ContentionPolicy,
                                 PolicyDecision)


class TimestampDeferral(ContentionPolicy):
    """Earlier timestamp wins; the loser is deferred or restarts.

    * An **untimestamped** request (issued outside any transaction) is
      treated per Section 2.2: deferred as-if-latest-timestamp under the
      default ``untimestamped_policy="defer"``, or it kills the
      speculation under ``"abort"``.
    * A **later**-timestamped request is deferred (the holder wins).
    * An **earlier**-timestamped request makes the holder lose -- unless
      the Section 3.2 single-block relaxation applies, in which case it
      too may be deferred (deadlock is impossible with one block under
      conflict and no other miss outstanding).

    Guarantees: starvation freedom (the earliest timestamp always
    succeeds) without ever acquiring the lock.  Forfeits: needs
    timestamp plumbing (markers/probes) in the protocol.
    """

    name = "timestamp"
    ordering = "timestamp"
    uses_nack = False

    def __init__(self, config, cpu_id: int):
        super().__init__(config, cpu_id)
        #: Conflicts an *earlier*-timestamped requester would have won
        #: that the Section 3.2 single-block relaxation deferred anyway.
        self.relaxation_deferrals = 0

    def resolve(self, ctx: ConflictContext) -> PolicyDecision:
        if ctx.requester_ts is None:
            if self.config.spec.untimestamped_policy == "abort":
                return PolicyDecision.ABORT_HOLDER
            return PolicyDecision.DEFER
        if beats(ctx.requester_ts, ctx.holder_ts):
            if ctx.relaxation_ok:
                self.relaxation_deferrals += 1
                return PolicyDecision.DEFER
            return PolicyDecision.ABORT_HOLDER
        return PolicyDecision.DEFER

    def telemetry(self) -> dict:
        data = super().telemetry()
        data["relaxation_deferrals"] = self.relaxation_deferrals
        return data
