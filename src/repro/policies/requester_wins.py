"""Requester-wins conflict resolution (best-effort HTM semantics).

The policy of TSX-like best-effort hardware transactional memory: an
incoming conflicting request always wins and the holding transaction
aborts.  No timestamps, no deferral, no protocol changes -- and no
progress guarantee: two transactions that keep requesting each other's
lines abort each other forever (the paper's Figure 2 livelock).  Real
best-effort HTMs therefore pair it with a fallback path: after ``K``
failed attempts, stop speculating and acquire the lock for real
(``contention_fallback_k``; None disables the fallback and exposes the
livelock, which the verify starvation watchdog flags).
"""

from __future__ import annotations

from typing import Optional

from repro.coherence.messages import Timestamp
from repro.policies.base import (ConflictContext, ContentionPolicy,
                                 PolicyDecision)


class RequesterWins(ContentionPolicy):
    """The incoming request always wins; the holder aborts.

    Guarantees: simplicity -- plain MOESI behaviour, no retained
    ownership, no deferral machinery exercised.  Forfeits: lock-freedom;
    progress rests entirely on the abort-count-``K`` lock fallback.
    """

    name = "requester-wins"
    ordering = "none"
    uses_nack = False

    def __init__(self, config, cpu_id: int):
        super().__init__(config, cpu_id)
        #: Conflicts this holder conceded (every one, by construction).
        self.holder_aborts = 0

    def resolve(self, ctx: ConflictContext) -> PolicyDecision:
        self.holder_aborts += 1
        return PolicyDecision.ABORT_HOLDER

    def telemetry(self) -> dict:
        data = super().telemetry()
        data["holder_aborts"] = self.holder_aborts
        return data

    def probe_beats(self, probe_ts: Timestamp,
                    holder_ts) -> bool:
        # Any championed waiter defeats the holder, consistent with
        # resolve(): the holder never wins a conflict.
        return True

    def must_release_before_miss(self, deferred, holder_ts) -> bool:
        return False  # nothing is ever deferred

    def backoff_for(self, attempts: int) -> Optional[int]:
        # Best-effort HTMs re-execute immediately after the pipeline
        # redirection penalty; there is no priority to wait out.  The
        # *absence* of escalation is what sustains the Figure 2 livelock.
        return self.config.spec.misspec_penalty

    def should_fallback(self, attempts: int) -> bool:
        k = self.config.spec.contention_fallback_k
        return k is not None and attempts >= k
