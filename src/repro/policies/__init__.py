"""Pluggable contention-management policies (the policy lab).

Select with ``SpeculationConfig(contention_policy=...)`` (or
``SystemConfig.with_policy``); compare with the ``policies`` experiment
/ ``repro policies`` CLI; certify with ``repro verify --policy``.

========================  ==========  =========  =============================
policy                    ordering    retention  progress guarantee
========================  ==========  =========  =============================
``timestamp`` (default)   timestamp   deferral   starvation-free (the paper)
``nack``                  timestamp   NACK       starvation-free (Section 3)
``requester-wins``        none        none       none; lock fallback after K
``backoff``               priority    NACK       probabilistic (Polka-style)
========================  ==========  =========  =============================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.policies.backoff import BackoffAborts
from repro.policies.base import (ConflictContext, ContentionPolicy,
                                 PolicyDecision)
from repro.policies.nack import NackRetention
from repro.policies.requester_wins import RequesterWins
from repro.policies.timestamp import TimestampDeferral

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.config import SystemConfig

#: Registry: ``contention_policy`` config value -> policy class.  The
#: valid-name tuple is mirrored in ``SpeculationConfig.__post_init__``
#: (config cannot import this package); a unit test keeps them in sync.
POLICIES: dict[str, type[ContentionPolicy]] = {
    cls.name: cls
    for cls in (TimestampDeferral, NackRetention, RequesterWins,
                BackoffAborts)
}

POLICY_NAMES: tuple[str, ...] = tuple(POLICIES)


def make_policy(config: "SystemConfig", cpu_id: int) -> ContentionPolicy:
    """Instantiate the configured policy for one controller."""
    name = config.spec.contention_policy
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown contention_policy {name!r}; known: "
            f"{sorted(POLICIES)}") from None
    return cls(config, cpu_id)


__all__ = [
    "BackoffAborts", "ConflictContext", "ContentionPolicy",
    "NackRetention", "POLICIES", "POLICY_NAMES", "PolicyDecision",
    "RequesterWins", "TimestampDeferral", "make_policy",
]
