"""Contention-policy interface.

The paper's TLR algorithm resolves every transactional conflict one way:
timestamp order decides the winner, the loser is deferred or restarted.
That decision point is narrow -- a handful of call sites inside
:class:`~repro.coherence.controller.CacheController` -- but the design
space behind it is wide (Section 2.2's defer-vs-abort choice for
untimestamped requests, Section 3's deferral-vs-NACK retention, and the
whole later TM literature of requester-wins HTMs and backoff-based
contention managers).  :class:`ContentionPolicy` makes the decision point
a first-class interface so those alternatives run on the *same* machine,
sweep engine and verification oracle as the paper's policy.

A policy sees each conflict as a :class:`ConflictContext` -- requester
and holder timestamps, the line, the transactional state, retry counts --
and answers with a :class:`PolicyDecision`.  The controller stays the
owner of all protocol mechanics (deferred queue, markers/probes, NACK
transport, restart plumbing); the policy only picks winners and paces
retries.  ``resolve`` must therefore be side-effect-free on coherence
state: lifecycle bookkeeping belongs in the ``on_restart``/``on_commit``/
``on_nacked`` hooks.

Each policy also *declares* its ordering contract (``ordering``), which
the verify-layer deferral monitor checks runs against: ``"timestamp"``
(deferrals must follow the paper's timestamp rules), ``"priority"``
(deferrals must follow accumulated request priority) or ``"none"`` (the
policy never defers, so any deferral is a bug).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.coherence.messages import Timestamp, beats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.coherence.messages import BusRequest
    from repro.harness.config import SystemConfig


class PolicyDecision(enum.Enum):
    """What to do with a conflicting incoming request."""

    DEFER = "defer"                      # buffer it; answer at commit
    NACK_RETRY = "nack-retry"            # refuse it (snoop time only)
    ABORT_REQUESTER = "abort-requester"  # serve, but kill the requester
    ABORT_HOLDER = "abort-holder"        # the local transaction loses


@dataclass(frozen=True, slots=True)
class ConflictContext:
    """One conflict, as seen by the transaction *holding* the data."""

    line: int
    requester: int
    holder: int
    requester_ts: Optional[Timestamp]
    holder_ts: Optional[Timestamp]
    is_write: bool           # the incoming request wants the line writable
    holder_wrote: bool       # the holder speculatively wrote the line
    relaxation_ok: bool      # Section 3.2 single-block preconditions hold
    requester_prio: int = 0  # accumulated priority carried by the request
    holder_has_miss: bool = False  # holder has other transactional misses
    holder_retries: int = 0  # holder's consecutive-restart count
    at_snoop: bool = False   # decided at the snoop (NACK still possible)
    now: int = 0


class ContentionPolicy:
    """Base class: the paper-default hooks every policy inherits.

    One instance lives per :class:`CacheController` (policies may carry
    per-processor state such as accumulated priority), constructed by
    :func:`repro.policies.make_policy` from the run's config.
    """

    #: Registry name (``SpeculationConfig.contention_policy`` value).
    name = "abstract"
    #: Ordering contract the deferral monitor validates against:
    #: "timestamp" | "priority" | "none".
    ordering = "timestamp"
    #: Whether the controller consults the policy at snoop time for
    #: NACK-based retention (requires protocol NACK support).
    uses_nack = False

    def __init__(self, config: "SystemConfig", cpu_id: int):
        self.config = config
        self.cpu_id = cpu_id
        self.retries = 0

    # ------------------------------------------------------------------
    # The conflict decision
    # ------------------------------------------------------------------
    def resolve(self, ctx: ConflictContext) -> PolicyDecision:
        """Pick an outcome for one conflict.  Must be side-effect-free."""
        raise NotImplementedError

    def probe_beats(self, probe_ts: Timestamp,
                    holder_ts: Optional[Timestamp]) -> bool:
        """Does a probe championing ``probe_ts`` defeat the holder?
        (Probes re-evaluate chain conflicts; Section 3.1.1.)"""
        return beats(probe_ts, holder_ts)

    def must_release_before_miss(self, deferred, holder_ts) -> bool:
        """Must the holder release its deferred queue before taking a
        new miss?  The paper's rule: yes when a relaxation-deferred
        *earlier* request is held (Section 3.2's deadlock-avoidance)."""
        earliest = deferred.earliest_ts()
        return earliest is not None and beats(earliest, holder_ts)

    # ------------------------------------------------------------------
    # Lifecycle hooks (bookkeeping lives here, not in resolve())
    # ------------------------------------------------------------------
    def on_restart(self, reason: str, attempts: int) -> None:
        """The local transaction restarted (``attempts`` consecutive)."""
        self.retries = attempts

    def on_commit(self) -> None:
        """The local transaction committed."""
        self.retries = 0

    def on_nacked(self, request: "BusRequest") -> None:
        """Our own request was refused with a NACK."""

    # ------------------------------------------------------------------
    # Pacing
    # ------------------------------------------------------------------
    def backoff_for(self, attempts: int) -> Optional[int]:
        """Cycles to wait before restarting after ``attempts``
        consecutive losses.  None selects the processor's built-in
        linear backoff (the behavior-preserving default)."""
        return None

    def nack_delay(self, request: "BusRequest") -> int:
        """Cycles a NACKed requester waits before re-arbitrating."""
        return self.config.spec.nack_retry_delay

    def request_priority(self) -> int:
        """Priority stamped on requests issued while speculating."""
        return 0

    def should_fallback(self, attempts: int) -> bool:
        """After ``attempts`` failed speculation attempts, acquire the
        lock for real instead of retrying?  (TLR's answer: never --
        timestamps guarantee progress.)"""
        return False

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def telemetry(self) -> dict:
        """End-of-run numeric state, exported as ``policy.<key>`` gauges
        by :class:`repro.obs.MachineMetrics`.  Policies may accumulate
        telemetry tallies inside ``resolve`` (counting its verdicts
        never feeds back into a decision, so the side-effect-free
        contract on *coherence state* is preserved)."""
        return {"retries": self.retries}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} cpu{self.cpu_id}>"
