"""Observability: metrics, span tracing support, and trend tooling.

The paper's evaluation is an exercise in *explaining* performance --
stall attribution, restart counts, deferral behaviour -- so the
reproduction carries a first-class observability layer:

* :mod:`repro.obs.metrics` -- a dependency-free metrics registry
  (counters, gauges, fixed-bucket histograms) plus
  :class:`~repro.obs.collect.MachineMetrics`, the collector that the
  coherence controllers and processors publish into through gated
  ``obs`` attributes (same pattern as the verify layer's ``monitor``
  hook: ``None`` in normal runs, one attribute test on the hot path).
* span events live in :mod:`repro.sim.trace` (the :class:`Tracer`
  pairs txn-begin/commit, defer/service and request/data into duration
  spans for Perfetto).
* :mod:`repro.obs.profile` -- the causal profiling layer: per-lock
  contention profiles (commit rates, abort causes, cycles lost,
  deferral waits) and the who-aborts-whom conflict matrix, built live
  from the machine taps; :mod:`repro.obs.causal` rebuilds the identical
  profile post-hoc from a v3 record log (kept out of this namespace to
  avoid an eager ``repro.record`` import).
* :mod:`repro.harness.trend` diffs ``BENCH_*.json`` artifacts across
  commits (the ``repro trend`` command).
"""

from repro.obs.metrics import (DEPTH_BUCKETS, LATENCY_BUCKETS, RETRY_BUCKETS,
                               Histogram, MetricsRegistry,
                               openmetrics_from_dict, summarize_metrics)
from repro.obs.collect import MachineMetrics
from repro.obs.profile import (ABORT_CAUSES, LockProfiler, ProfileBuilder,
                               TxnTapFolder, cause_of, critical_path,
                               describe_chain, matrix_canonical_json,
                               render_folded, render_markdown)

__all__ = [
    "ABORT_CAUSES", "DEPTH_BUCKETS", "LATENCY_BUCKETS", "RETRY_BUCKETS",
    "Histogram", "LockProfiler", "MetricsRegistry", "MachineMetrics",
    "ProfileBuilder", "TxnTapFolder", "cause_of", "critical_path",
    "describe_chain", "matrix_canonical_json", "openmetrics_from_dict",
    "render_folded", "render_markdown", "summarize_metrics",
]
