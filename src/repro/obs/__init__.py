"""Observability: metrics, span tracing support, and trend tooling.

The paper's evaluation is an exercise in *explaining* performance --
stall attribution, restart counts, deferral behaviour -- so the
reproduction carries a first-class observability layer:

* :mod:`repro.obs.metrics` -- a dependency-free metrics registry
  (counters, gauges, fixed-bucket histograms) plus
  :class:`~repro.obs.collect.MachineMetrics`, the collector that the
  coherence controllers and processors publish into through gated
  ``obs`` attributes (same pattern as the verify layer's ``monitor``
  hook: ``None`` in normal runs, one attribute test on the hot path).
* span events live in :mod:`repro.sim.trace` (the :class:`Tracer`
  pairs txn-begin/commit, defer/service and request/data into duration
  spans for Perfetto).
* :mod:`repro.harness.trend` diffs ``BENCH_*.json`` artifacts across
  commits (the ``repro trend`` command).
"""

from repro.obs.metrics import (DEPTH_BUCKETS, LATENCY_BUCKETS, RETRY_BUCKETS,
                               Histogram, MetricsRegistry,
                               openmetrics_from_dict, summarize_metrics)
from repro.obs.collect import MachineMetrics

__all__ = [
    "DEPTH_BUCKETS", "LATENCY_BUCKETS", "RETRY_BUCKETS",
    "Histogram", "MetricsRegistry", "MachineMetrics",
    "openmetrics_from_dict", "summarize_metrics",
]
