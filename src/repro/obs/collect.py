"""MachineMetrics: the collector the simulated machine publishes into.

Attachment follows the verify layer's ``monitor`` pattern: every
:class:`~repro.coherence.controller.CacheController` and
:class:`~repro.cpu.processor.Processor` carries an ``obs`` attribute
that is ``None`` in normal runs; :meth:`MachineMetrics.attach` points
them all at one collector, and each hook site pays a single attribute
test when collection is off.

Sampling is **event-driven**, never timer-driven: a periodic
self-rescheduling sampler event would keep the kernel's queue non-empty
and turn a genuine deadlock (queue drained with incomplete actors) into
a max-cycles livelock diagnostic.  Deferral-queue depth is therefore
observed at each push -- every change of the queue passes through a
hook anyway -- and latencies are measured by pairing the open/close
events (request->data, defer->service, marker/probe send->receive).

The collector only *reads* simulation state; it schedules nothing and
mutates nothing, so attaching it cannot change a run's fingerprint
(pinned by the golden-fingerprint tests, which run with metrics on).
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import TYPE_CHECKING, Optional

from repro.obs.metrics import (DEPTH_BUCKETS, LATENCY_BUCKETS, RETRY_BUCKETS,
                               MetricsRegistry)

#: Batch-size buckets mirror the kernel's power-of-two slot layout
#: (``kernel_stats()["batch_sizes"]`` keys are ``2**i - 1`` upper
#: bounds); 0 = an all-cancelled bucket drained without dispatching.
BATCH_BUCKETS = (0, 1, 3, 7, 15, 31, 63, 127, 255, 511, 1023)

if TYPE_CHECKING:  # pragma: no cover
    from repro.coherence.controller import CacheController
    from repro.coherence.messages import BusRequest, Marker, Probe
    from repro.cpu.processor import Processor
    from repro.harness.machine import Machine


class MachineMetrics:
    """Collects conflict/latency telemetry from one machine run."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry or MetricsRegistry()
        self._machine: Optional["Machine"] = None
        # Open measurements, closed by the matching completion event.
        self._miss_open: dict[int, int] = {}          # req_id -> issue time
        self._defer_open: dict[int, int] = {}         # req_id -> defer time
        self._nack_retries: TallyCounter = TallyCounter()  # req_id -> nacks
        self._marker_open: dict[int, list[int]] = {}  # req_id -> send times
        self._probe_open: dict[tuple, list[int]] = {}  # (line,ts,origin)
        # The hook-path instruments, resolved once: per-event
        # get-or-create registry lookups were visible in profiles.
        reg = self.registry
        self._requests_issued = reg.counter("requests.issued")
        self._defer_count = reg.counter("defer.count")
        self._defer_depth_hist = reg.histogram("defer.queue_depth",
                                               DEPTH_BUCKETS)
        self._defer_depth_gauge = reg.gauge("defer.queue_depth")
        self._defer_serviced = reg.counter("defer.serviced")
        self._defer_latency = reg.histogram("defer.latency", LATENCY_BUCKETS)
        self._nack_received = reg.counter("nack.received")
        self._miss_latency = reg.histogram("miss.latency", LATENCY_BUCKETS)
        self._nack_retries_hist = reg.histogram("nack.retries_per_request",
                                                RETRY_BUCKETS)
        self._marker_sent = reg.counter("marker.sent")
        self._marker_received = reg.counter("marker.received")
        self._marker_latency = reg.histogram("marker.latency",
                                             LATENCY_BUCKETS)
        self._probe_sent = reg.counter("probe.sent")
        self._probe_received = reg.counter("probe.received")
        self._probe_latency = reg.histogram("probe.latency", LATENCY_BUCKETS)
        self._restart_count = reg.counter("restart.count")
        self._restart_backoff = reg.histogram("restart.backoff",
                                              LATENCY_BUCKETS)
        self._restart_streak = reg.histogram("restart.streak", RETRY_BUCKETS)

    def attach(self, machine: "Machine") -> "MachineMetrics":
        """Point every controller and processor at this collector.
        Call before ``run_workload``."""
        self._machine = machine
        for controller in machine.controllers:
            controller.obs = self
        for processor in machine.processors:
            processor.obs = self
        return self

    # ------------------------------------------------------------------
    # Controller hooks
    # ------------------------------------------------------------------
    def on_request_issued(self, controller: "CacheController",
                          request: "BusRequest") -> None:
        """A miss left for the bus (first issue; NACK reissues keep the
        original start so miss.latency covers the whole retry loop)."""
        self._requests_issued.inc()
        self._miss_open.setdefault(request.req_id, controller.sim.now)

    def on_defer(self, controller: "CacheController",
                 request: "BusRequest") -> None:
        depth = len(controller.deferred)
        self._defer_count.inc()
        self._defer_depth_hist.observe(depth)
        self._defer_depth_gauge.set(depth)
        self._defer_open.setdefault(request.req_id, controller.sim.now)

    def on_obligation_serviced(self, controller: "CacheController",
                               request: "BusRequest") -> None:
        started = self._defer_open.pop(request.req_id, None)
        if started is not None:
            self._defer_serviced.inc()
            self._defer_latency.observe(controller.sim.now - started)

    def on_nack(self, controller: "CacheController",
                request: "BusRequest") -> None:
        """Our own request came back refused (requester side)."""
        self._nack_received.inc()
        self._nack_retries[request.req_id] += 1

    def on_data(self, controller: "CacheController",
                request: "BusRequest") -> None:
        """The fill arrived: close the miss and its retry tally."""
        issued = self._miss_open.pop(request.req_id, None)
        if issued is not None:
            self._miss_latency.observe(controller.sim.now - issued)
        self._nack_retries_hist.observe(
            self._nack_retries.pop(request.req_id, 0))

    def on_marker_sent(self, controller: "CacheController",
                       marker: "Marker") -> None:
        self._marker_sent.inc()
        self._marker_open.setdefault(marker.req_id, []) \
            .append(controller.sim.now)

    def on_marker(self, controller: "CacheController",
                  marker: "Marker") -> None:
        sends = self._marker_open.get(marker.req_id)
        if sends:
            self._marker_received.inc()
            self._marker_latency.observe(controller.sim.now - sends.pop(0))

    def on_probe_sent(self, controller: "CacheController",
                      probe: "Probe") -> None:
        self._probe_sent.inc()
        self._probe_open.setdefault((probe.line, probe.ts, probe.origin),
                                    []).append(controller.sim.now)

    def on_probe(self, controller: "CacheController",
                 probe: "Probe") -> None:
        sends = self._probe_open.get((probe.line, probe.ts, probe.origin))
        if sends:
            self._probe_received.inc()
            self._probe_latency.observe(controller.sim.now - sends.pop(0))

    # ------------------------------------------------------------------
    # Processor hook
    # ------------------------------------------------------------------
    def on_restart(self, processor: "Processor", reason: str,
                   backoff: int, streak: int) -> None:
        """A speculation died and its restart was paced ``backoff``
        cycles out after ``streak`` consecutive losses."""
        self._restart_count.inc()
        self._restart_backoff.observe(backoff)
        self._restart_streak.observe(streak)

    # ------------------------------------------------------------------
    # Scheduler hooks (repro.sched)
    # ------------------------------------------------------------------
    # Resolved lazily (get-or-create at event time) rather than in
    # __init__: with the scheduler off nothing fires, so scheduler-off
    # metrics payloads carry no sched.* instruments at all.
    def on_sched_preempt(self, slot: int, thread: int, ran: int,
                         aborted: bool) -> None:
        """A timer interrupt preempted ``thread`` after ``ran`` on-CPU
        cycles; ``aborted`` when it was speculating (context-switch
        abort, the paper's stress mode)."""
        self.registry.counter("sched.preemptions").inc()
        self.registry.histogram("sched.timeslice",
                                LATENCY_BUCKETS).observe(ran)
        if aborted:
            self.registry.counter("sched.context_switch_aborts").inc()

    def on_sched_migrate(self, thread: int, from_slot: int,
                         to_slot: int) -> None:
        self.registry.counter("sched.migrations").inc()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def finalize(self, machine: Optional["Machine"] = None) -> dict:
        """Fold in end-of-run state (per-policy telemetry, outcome
        counters) and export the registry as a JSON-able dict."""
        machine = machine or self._machine
        if machine is not None:
            for controller in machine.controllers:
                for key, value in controller.policy.telemetry().items():
                    self.registry.gauge(f"policy.{key}").set(value)
            stats = machine.stats
            # Restart reasons come from the stats aggregate rather than
            # the on_restart hook: a restart delivered to a paused core
            # is recorded there but never paced through the hook.
            for reason, count in stats.reason_totals().items():
                self.registry.counter(f"restart.reason.{reason}").inc(count)
            self.registry.counter("txn.commits").inc(
                stats.total("elisions_committed"))
            self.registry.counter("txn.lock_fallbacks").inc(
                stats.total("lock_fallbacks"))
            kernel = machine.sim.kernel_stats()
            self.registry.counter("sim.kernel.events").inc(
                machine.sim.events_fired)
            self.registry.counter("sim.kernel.compactions").inc(
                kernel["compactions"])
            batch_hist = self.registry.histogram("sim.kernel.batch_size",
                                                 BATCH_BUCKETS)
            for upper, count in sorted(kernel["batch_sizes"].items()):
                batch_hist.observe_many(upper, count)
            engine = getattr(machine, "sched_engine", None)
            if engine is not None:
                # Per-thread (not per-CPU) latency attribution: how many
                # cycles each workload thread actually held a CPU slot,
                # and how many it spent descheduled or switching
                # (finish time minus on-CPU time).
                self.registry.gauge("sched.slots").set(engine.slots)
                for thread, oncpu in sorted(engine.oncpu.items()):
                    finish = stats.cpu(thread).finish_time
                    self.registry.gauge(
                        f"sched.thread.t{thread}.oncpu").set(oncpu)
                    self.registry.gauge(
                        f"sched.thread.t{thread}.offcpu").set(
                        max(0, finish - oncpu))
        payload = self.registry.to_dict()
        if machine is not None and machine.controllers:
            payload["meta"] = {
                "policy": machine.controllers[0].policy.name,
                "scheme": machine.config.scheme.value,
                "kernel_backend": machine.sim.backend,
            }
        return payload
