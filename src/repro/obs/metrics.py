"""Lightweight metrics primitives: counters, gauges, histograms.

No external dependencies, no locks (the simulator is single-threaded),
no background sampling events -- a metric is only ever touched from an
instrumentation hook that already fired, so attaching the registry can
never change the event schedule.  Export is a plain ``dict`` tree
suitable for JSON (``MetricsRegistry.to_dict``) plus a compact flat
summary (:func:`summarize_metrics`) for tables and sweep telemetry.

Histograms use fixed bucket boundaries declared at creation time so
exports from different runs are always merge/diff-compatible -- the
property the ``repro trend`` report relies on.  ``buckets`` are
inclusive upper bounds; one overflow bin catches everything beyond the
last bound.
"""

from __future__ import annotations

import bisect
from typing import Optional, Sequence

#: Deferral-queue depth at each push (queue capacity is 4*num_cpus).
DEPTH_BUCKETS: tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32, 64)
#: Per-request retry counts (NACK re-arbitrations, restart streaks).
RETRY_BUCKETS: tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32, 64)
#: Cycle latencies (defer->service, request->data, marker/probe flight,
#: restart backoff); power-of-two bounds from one cycle to ~4K cycles.
LATENCY_BUCKETS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256,
                                    512, 1024, 2048, 4096)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins); tracks its own max."""

    __slots__ = ("name", "value", "max")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.max = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.max:
            self.max = value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are inclusive upper bounds in ascending order; an
    observation larger than the last bound lands in the overflow bin
    (exported as ``"+Inf"``).
    """

    __slots__ = ("name", "buckets", "counts", "overflow", "count", "sum",
                 "min", "max")

    def __init__(self, name: str, buckets: Sequence[int]):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(
                tuple(buckets)):
            raise ValueError(f"histogram {name!r}: buckets must be "
                             f"strictly ascending, got {buckets!r}")
        self.name = name
        self.buckets = tuple(buckets)
        self.counts = [0] * len(self.buckets)
        self.overflow = 0
        self.count = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = bisect.bisect_left(self.buckets, value)
        if index == len(self.buckets):
            self.overflow += 1
        else:
            self.counts[index] += 1

    def observe_many(self, value, count: int) -> None:
        """Fold ``count`` identical observations in one call (imports
        pre-aggregated tallies, e.g. the kernel's batch-size slots)."""
        if count <= 0:
            return
        self.count += count
        self.sum += value * count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = bisect.bisect_left(self.buckets, value)
        if index == len(self.buckets):
            self.overflow += count
        else:
            self.counts[index] += count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named metric families, created on first touch.

    ``counter``/``gauge``/``histogram`` are get-or-create so publishers
    need no registration step; re-requesting a histogram under a
    different bucket layout is an error (exports must stay comparable).
    """

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  buckets: Sequence[int] = LATENCY_BUCKETS) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name, buckets)
        elif metric.buckets != tuple(buckets):
            raise ValueError(
                f"histogram {name!r} re-declared with different buckets: "
                f"{metric.buckets} vs {tuple(buckets)}")
        return metric

    def to_dict(self) -> dict:
        """Full JSON-serializable export (sorted for stable diffs)."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "gauges": {name: {"value": g.value, "max": g.max}
                       for name, g in sorted(self.gauges.items())},
            "histograms": {name: h.to_dict()
                           for name, h in sorted(self.histograms.items())},
        }

    def to_openmetrics(self, meta: Optional[dict] = None) -> str:
        """The registry in OpenMetrics text exposition format.

        ``meta`` labels (service name, schema versions, ...) are
        rendered as a ``target_info`` sample, matching what
        :meth:`~repro.obs.collect.MachineMetrics.finalize` payloads
        carry in their ``meta`` section."""
        payload = self.to_dict()
        if meta:
            payload["meta"] = dict(meta)
        return openmetrics_from_dict(payload)


def _om_name(name: str) -> str:
    """Dotted metric names to OpenMetrics-legal snake names."""
    return name.replace(".", "_").replace("-", "_")


def openmetrics_from_dict(payload: Optional[dict]) -> str:
    """Render a :meth:`MetricsRegistry.to_dict` export (or a
    :meth:`~repro.obs.collect.MachineMetrics.finalize` payload, which
    adds a ``meta`` section) as OpenMetrics text exposition format:
    ``# TYPE`` headers, ``_total`` counter samples, cumulative
    ``_bucket{le=...}`` histogram series and a final ``# EOF``.

    The same dict that lands in ``RunResult.metrics`` (and the result
    cache) renders identically, so cached runs can be re-exported
    without re-simulating.
    """
    lines: list[str] = []
    payload = payload or {}
    meta = payload.get("meta") or {}
    if meta:
        labels = ",".join(f'{_om_name(str(key))}="{value}"'
                          for key, value in sorted(meta.items()))
        lines.append("# TYPE target info")
        lines.append(f"target_info{{{labels}}} 1")
    for name, value in sorted((payload.get("counters") or {}).items()):
        om = _om_name(name)
        lines.append(f"# TYPE {om} counter")
        lines.append(f"{om}_total {value}")
    for name, gauge in sorted((payload.get("gauges") or {}).items()):
        om = _om_name(name)
        lines.append(f"# TYPE {om} gauge")
        lines.append(f"{om} {gauge['value']}")
        lines.append(f"# TYPE {om}_max gauge")
        lines.append(f"{om}_max {gauge['max']}")
    for name, hist in sorted((payload.get("histograms") or {}).items()):
        om = _om_name(name)
        lines.append(f"# TYPE {om} histogram")
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cumulative += count
            lines.append(f'{om}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{om}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{om}_sum {hist['sum']}")
        lines.append(f"{om}_count {hist['count']}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def summarize_metrics(metrics: Optional[dict]) -> dict:
    """Flatten a :meth:`MetricsRegistry.to_dict` export into a compact
    ``{dotted.name: number}`` dict (histograms reduce to count/mean/max)
    for tables, sweep telemetry and quick assertions."""
    if not metrics:
        return {}
    flat: dict[str, float] = {}
    for name, value in (metrics.get("counters") or {}).items():
        flat[name] = value
    for name, gauge in (metrics.get("gauges") or {}).items():
        flat[f"{name}.last"] = gauge["value"]
        flat[f"{name}.max"] = gauge["max"]
    for name, hist in (metrics.get("histograms") or {}).items():
        flat[f"{name}.count"] = hist["count"]
        if hist["count"]:
            flat[f"{name}.mean"] = round(hist["sum"] / hist["count"], 3)
            flat[f"{name}.max"] = hist["max"]
    return flat
