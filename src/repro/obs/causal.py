"""Post-hoc causal profiling from record logs.

A v3 record log carries ``OP_TXN`` records -- normalized transaction
begin/commit/abort events emitted by the *same*
:class:`~repro.obs.profile.TxnTapFolder` that feeds the live profiler,
written in tap order right behind the raw ``OP_TAP`` records they fold.
Replaying them (plus the ``defer``/``service`` taps, whose dense
request refs pair each deferral push with its service) through a fresh
:class:`~repro.obs.profile.ProfileBuilder` therefore reconstructs the
live profile exactly: same conflict matrix, same histograms, same
causal chains.  The integration tests compare the two snapshots'
canonical JSON byte for byte.

The one caveat is recorder ``capacity``: a bounded recorder drops tap
and txn records once saturated, and a profile folded from a clipped log
under-counts accordingly.  Profile-bearing captures should record
unbounded (the default).
"""

from __future__ import annotations

from typing import Union

from repro.obs.profile import ProfileBuilder
from repro.record.format import (TXN_ABORT, TXN_BEGIN, TXN_COMMIT,
                                 LogImage, load_log)


def builder_from_log(image: LogImage) -> ProfileBuilder:
    """Fold ``image``'s transaction and deferral records into a
    finalized :class:`ProfileBuilder`."""
    builder = ProfileBuilder()
    for record in image.records:
        if record.op == "txn":
            if record.flags == TXN_BEGIN:
                builder.txn_begin(record.time, record.cpu, record.line,
                                  record.label, record.ref)
            elif record.flags == TXN_COMMIT:
                builder.txn_commit(record.time, record.cpu)
            elif record.flags == TXN_ABORT:
                builder.txn_abort(
                    record.time, record.cpu, record.label, record.line,
                    record.ref if record.ref is not None else -1)
        elif record.op == "tap" and record.ref is not None:
            # Deferral waits: the dense request ref pairs each push
            # with its eventual service, mirroring the live folder's
            # req_id matching (keys differ, durations do not).
            if record.label == "defer":
                builder.defer_push(record.time, record.cpu, record.ref)
            elif record.label == "service":
                builder.defer_service(record.time, record.ref)
    builder.finalize()
    return builder


def profile_from_log(source: Union[str, bytes, LogImage]) -> dict:
    """The contention-profile snapshot of a recorded run.

    ``source`` is a log path, raw log bytes, or an already-decoded
    :class:`LogImage`.
    """
    image = source if isinstance(source, LogImage) else load_log(source)
    return builder_from_log(image).snapshot()
