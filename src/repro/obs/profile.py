"""Per-lock contention profiles and causal abort attribution.

The telemetry layer (:mod:`repro.obs.collect`) reports *aggregate*
conflict counters; this module answers the questions those aggregates
cannot: which **lock** pays for contention, which **cpu** aborted whom,
and what each abort **cost**.  Three pieces:

* :class:`TxnTapFolder` -- normalizes the shared machine tap stream
  (:mod:`repro.sim.taps`) into transaction-lifecycle events
  (begin/commit/abort, plus deferral push/service) on a sink.  The
  *same* folder drives the live profiler and the flight recorder's
  ``OP_TXN`` record emission, which is what makes the live conflict
  matrix and the post-hoc one (:func:`repro.obs.causal.profile_from_log`)
  byte-for-byte identical.
* :class:`ProfileBuilder` -- the accumulator: per-lock attempt/commit/
  abort counts bucketed by cause, critical-section and abort-cost
  histograms, deferral wait histograms, the who-aborts-whom conflict
  matrix and a capped list of per-abort causal chains.
* :class:`LockProfiler` -- the live tap consumer gated exactly like
  :class:`~repro.obs.collect.MachineMetrics`: a pure observer (no
  scheduling, no RNG, no machine mutation), so profiler-on runs stay
  bit-identical to profiler-off runs (the golden-fingerprint tests pin
  this).

Abort causes follow the restart-reason vocabulary of
:mod:`repro.cpu.processor`, bucketed as: ``conflict`` (timestamp-order
losses, invalidations, probe losses), ``nack`` (killed by a NACK-
retaining holder), ``context-switch`` (scheduler preemption),
``capacity`` (speculative buffering limits) and ``fallback``
(non-silent store pair broke the elision assumption).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Optional

from repro.cpu.isa import line_of
from repro.obs.metrics import LATENCY_BUCKETS, RETRY_BUCKETS, Histogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.machine import Machine
    from repro.obs.metrics import MetricsRegistry

#: Restart reason -> cause bucket.  Unlisted reasons (e.g.
#: ``terminated``) fall into ``other``.
CAUSE_OF = {
    "conflict-lost": "conflict",
    "conflict-lost-pending": "conflict",
    "data-conflict-pending": "conflict",
    "probe-lost": "conflict",
    "probe-lost-pending": "conflict",
    "invalidated": "conflict",
    "invalidated-in-flight": "conflict",
    "conflict-at-service": "conflict",
    "relaxation-revoked": "conflict",
    "aborted-by-holder": "nack",
    "deschedule": "context-switch",
    "capacity": "capacity",
    "wb-overflow": "capacity",
    "non-silent-pair": "fallback",
}

ABORT_CAUSES = ("conflict", "nack", "context-switch", "capacity",
                "fallback", "other")

#: How many per-abort causal chains a profile retains (event order).
MAX_CHAINS = 128

#: Snapshot schema generation (bump alongside structural changes).
PROFILE_SCHEMA = 1


def cause_of(reason: str) -> str:
    """Bucket a restart reason into one of :data:`ABORT_CAUSES`."""
    return CAUSE_OF.get(reason, "other")


def _lock_key(lock_line: Optional[int]) -> str:
    return f"{lock_line:#x}" if lock_line is not None else "?"


class _LockStats:
    """Accumulated per-lock contention numbers (one elided lock line)."""

    __slots__ = ("attempts", "commits", "aborts", "by_cause", "by_reason",
                 "cycles_lost", "cycles_committed", "deferrals",
                 "deferral_cycles", "pcs", "cs_hist", "abort_hist",
                 "defer_hist", "attempt_hist")

    def __init__(self) -> None:
        self.attempts = 0
        self.commits = 0
        self.aborts = 0
        self.by_cause: dict[str, int] = {}
        self.by_reason: dict[str, int] = {}
        self.cycles_lost = 0
        self.cycles_committed = 0
        self.deferrals = 0
        self.deferral_cycles = 0
        self.pcs: dict[str, int] = {}
        self.cs_hist = Histogram("cs_cycles", LATENCY_BUCKETS)
        self.abort_hist = Histogram("abort_cycles", LATENCY_BUCKETS)
        self.defer_hist = Histogram("defer_wait", LATENCY_BUCKETS)
        self.attempt_hist = Histogram("attempts_per_txn", RETRY_BUCKETS)

    @property
    def commit_rate(self) -> float:
        return self.commits / self.attempts if self.attempts else 0.0

    @property
    def cycles_contended(self) -> int:
        """The critical-path ranking key: cycles lost to aborts plus
        cycles other processors spent waiting in this lock's holder's
        deferred queue."""
        return self.cycles_lost + self.deferral_cycles

    def to_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "commits": self.commits,
            "aborts": self.aborts,
            "commit_rate": round(self.commit_rate, 6),
            "aborts_by_cause": dict(sorted(self.by_cause.items())),
            "aborts_by_reason": dict(sorted(self.by_reason.items())),
            "cycles_lost": self.cycles_lost,
            "cycles_committed": self.cycles_committed,
            "cycles_contended": self.cycles_contended,
            "deferrals": self.deferrals,
            "deferral_cycles": self.deferral_cycles,
            "pcs": dict(sorted(self.pcs.items())),
            "cs_cycles": self.cs_hist.to_dict(),
            "abort_cycles": self.abort_hist.to_dict(),
            "defer_wait": self.defer_hist.to_dict(),
            "attempts_per_txn": self.attempt_hist.to_dict(),
        }


class ProfileBuilder:
    """Accumulates normalized transaction events into a profile.

    Fed either live (``LockProfiler`` via :class:`TxnTapFolder`) or
    post-hoc from a record log's ``OP_TXN`` + deferral records
    (:func:`repro.obs.causal.profile_from_log`).  Both paths deliver
    the identical event sequence, so :meth:`snapshot` is deterministic
    across them -- the acceptance tests compare the serialized conflict
    matrices byte for byte.
    """

    def __init__(self) -> None:
        self._locks: dict[int, _LockStats] = {}
        #: cpu -> (begin_time, lock_line, pc) for the open transaction.
        self._open: dict[int, tuple[int, Optional[int], str]] = {}
        #: deferral key -> (push_time, holder lock line).
        self._pending_defer: dict[object, tuple[int, Optional[int]]] = {}
        #: victim cpu -> aborter cpu -> count (-1 = unattributed).
        self._matrix: dict[int, dict[int, int]] = {}
        self._chains: list[dict] = []
        #: (lock, pc, outcome) -> cycles, for folded flamegraph output.
        self._folded: dict[tuple[str, str, str], int] = {}
        self.unclosed = 0

    # -- sink interface (TxnTapFolder / causal fold) --------------------
    def _lock(self, lock_line: Optional[int]) -> _LockStats:
        stats = self._locks.get(lock_line)
        if stats is None:
            stats = self._locks[lock_line] = _LockStats()
        return stats

    def txn_begin(self, time: int, cpu: int, lock_line: Optional[int],
                  pc: str, attempts: int) -> None:
        stats = self._lock(lock_line)
        stats.attempts += 1
        stats.pcs[pc] = stats.pcs.get(pc, 0) + 1
        stats.attempt_hist.observe(attempts)
        self._open[cpu] = (time, lock_line, pc)

    def txn_commit(self, time: int, cpu: int) -> None:
        opened = self._open.pop(cpu, None)
        if opened is None:
            return
        begin, lock_line, pc = opened
        stats = self._lock(lock_line)
        stats.commits += 1
        stats.cycles_committed += time - begin
        stats.cs_hist.observe(time - begin)
        key = (_lock_key(lock_line), pc, "committed")
        self._folded[key] = self._folded.get(key, 0) + (time - begin)

    def txn_abort(self, time: int, cpu: int, reason: str,
                  conflict_line: Optional[int], aborter: int) -> None:
        opened = self._open.pop(cpu, None)
        if opened is None:
            return
        begin, lock_line, pc = opened
        cause = cause_of(reason)
        stats = self._lock(lock_line)
        stats.aborts += 1
        stats.by_cause[cause] = stats.by_cause.get(cause, 0) + 1
        stats.by_reason[reason] = stats.by_reason.get(reason, 0) + 1
        stats.cycles_lost += time - begin
        stats.abort_hist.observe(time - begin)
        row = self._matrix.setdefault(cpu, {})
        row[aborter] = row.get(aborter, 0) + 1
        if len(self._chains) < MAX_CHAINS:
            self._chains.append({
                "time": time, "victim": cpu, "aborter": aborter,
                "reason": reason, "cause": cause,
                "conflict_line": conflict_line,
                "lock": lock_line, "pc": pc,
                "cycles_lost": time - begin,
            })
        key = (_lock_key(lock_line), pc, cause)
        self._folded[key] = self._folded.get(key, 0) + (time - begin)

    def defer_push(self, time: int, holder_cpu: int, key: object) -> None:
        opened = self._open.get(holder_cpu)
        lock_line = opened[1] if opened is not None else None
        self._pending_defer[key] = (time, lock_line)

    def defer_service(self, time: int, key: object) -> None:
        pending = self._pending_defer.pop(key, None)
        if pending is None:
            return
        pushed, lock_line = pending
        stats = self._lock(lock_line)
        stats.deferrals += 1
        stats.deferral_cycles += time - pushed
        stats.defer_hist.observe(time - pushed)

    # -- export ---------------------------------------------------------
    def finalize(self) -> None:
        """Count transactions still open at end-of-run (terminated
        threads whose speculation never resolved)."""
        self.unclosed = len(self._open)
        self._open.clear()

    def snapshot(self) -> dict:
        """The full profile as sorted, JSON-stable plain data."""
        locks = {_lock_key(line): stats.to_dict()
                 for line, stats in self._locks.items()}
        totals = {
            "attempts": sum(s.attempts for s in self._locks.values()),
            "commits": sum(s.commits for s in self._locks.values()),
            "aborts": sum(s.aborts for s in self._locks.values()),
            "cycles_lost": sum(s.cycles_lost for s in self._locks.values()),
            "cycles_committed": sum(s.cycles_committed
                                    for s in self._locks.values()),
            "deferrals": sum(s.deferrals for s in self._locks.values()),
            "deferral_cycles": sum(s.deferral_cycles
                                   for s in self._locks.values()),
            "unclosed": self.unclosed,
        }
        totals["commit_rate"] = round(
            totals["commits"] / totals["attempts"], 6) \
            if totals["attempts"] else 0.0
        return {
            "schema": PROFILE_SCHEMA,
            "locks": dict(sorted(locks.items())),
            "conflicts": {
                str(victim): {str(aborter): count
                              for aborter, count in sorted(row.items())}
                for victim, row in sorted(self._matrix.items())},
            "chains": list(self._chains),
            "folded": {";".join(key): cycles
                       for key, cycles in sorted(self._folded.items())},
            "totals": totals,
        }


class TxnTapFolder:
    """Folds the raw tap stream into transaction events on ``sink``.

    The sink implements ``txn_begin(time, cpu, lock_line, pc,
    attempts)``, ``txn_commit(time, cpu)``, ``txn_abort(time, cpu,
    reason, conflict_line, aborter)``, ``defer_push(time, holder_cpu,
    key)`` and ``defer_service(time, key)``.

    Folding rules (mirroring the controller/processor wiring):

    * ``txn-begin`` (``enter_speculation``) fires *after* the elision
      checkpoint is pushed, so the root lock line, elision-site pc and
      attempt count are read straight off
      ``machine.processors[cpu].spec.checkpoint``.
    * an abort is the ``misspec`` tap (``_on_misspeculation``), which
      carries the restart reason.  A controller-initiated loss fires
      the ``loss`` tap first (same cycle, same cpu) with the conflicting
      line and the aborter cpu; the folder stashes those and the
      ``misspec`` event consumes the stash.  Resource aborts
      (capacity/wb-overflow/non-silent-pair/deschedule) have no ``loss``
      stash and no attributable aborter.
    * a transaction terminated with the run (``terminate()``) never
      fires ``misspec`` and stays open -- identical live and post-hoc.
    """

    #: Tap kinds the folder consumes; everything else is ignored.
    KINDS = frozenset({"txn-begin", "txn-commit", "misspec", "loss",
                       "defer", "service"})

    def __init__(self, sink) -> None:
        self.sink = sink
        self._machine: Optional["Machine"] = None
        self._open: set[int] = set()
        #: cpu -> (time, conflict_line, aborter) from the last loss tap.
        self._loss: dict[int, tuple[int, int, int]] = {}

    def attach_machine(self, machine: "Machine") -> "TxnTapFolder":
        self._machine = machine
        return self

    def on_tap(self, time: int, cpu: int, kind: str, args: tuple,
               obj: object) -> None:
        if kind == "txn-begin":
            lock_line: Optional[int] = None
            pc = ""
            attempts = 1
            if self._machine is not None:
                checkpoint = self._machine.processors[cpu].spec.checkpoint
                if checkpoint is not None and checkpoint.elisions:
                    root = checkpoint.elisions[0]
                    lock_line = line_of(root.lock_addr)
                    pc = root.pc
                    attempts = checkpoint.attempts
            self._open.add(cpu)
            self.sink.txn_begin(time, cpu, lock_line, pc, attempts)
        elif kind == "txn-commit":
            if cpu in self._open:
                self._open.discard(cpu)
                self.sink.txn_commit(time, cpu)
        elif kind == "loss":
            # Pre-call tap: the handler early-returns when not
            # speculating, mirrored here by the open set.
            if cpu in self._open:
                aborter = args[3] if len(args) > 3 else -1
                if aborter < 0 and isinstance(args[2], tuple):
                    # A probe forwarded through the directory carries
                    # origin=MEMORY, but its timestamp's second
                    # component is the champion transaction's cpu.
                    aborter = args[2][1]
                self._loss[cpu] = (time, args[1], aborter)
        elif kind == "misspec":
            if cpu not in self._open:
                return
            reason = args[0]
            conflict_line = args[1] if len(args) > 1 else 0
            aborter = -1
            stash = self._loss.pop(cpu, None)
            if stash is not None and stash[0] == time:
                conflict_line, aborter = stash[1], stash[2]
            self._open.discard(cpu)
            self.sink.txn_abort(time, cpu, reason,
                                conflict_line if conflict_line else None,
                                aborter)
        elif kind == "defer":
            self.sink.defer_push(time, cpu, args[0].req_id)
        elif kind == "service":
            self.sink.defer_service(time, args[0].req_id)


class LockProfiler:
    """The live per-lock contention profiler.

    Attach before ``run_workload`` (gated on ``config.metrics``, same
    as :class:`~repro.obs.collect.MachineMetrics`); call
    :meth:`snapshot` after the run.  Being a pure tap observer, it
    cannot move the schedule: profiler-on and profiler-off runs are
    bit-identical.
    """

    def __init__(self) -> None:
        self.builder = ProfileBuilder()
        self._folder = TxnTapFolder(self.builder)

    def attach(self, machine: "Machine") -> "LockProfiler":
        from repro.sim.taps import MachineTaps
        self._folder.attach_machine(machine)
        MachineTaps.ensure(machine).add_consumer(self._folder)
        return self

    def snapshot(self) -> dict:
        self.builder.finalize()
        return self.builder.snapshot()

    def publish(self, registry: "MetricsRegistry") -> None:
        """Publish aggregate profile families into an obs registry so
        they ride the existing OpenMetrics export and trend gating."""
        snap = self.builder.snapshot()
        totals = snap["totals"]
        registry.counter("profile.txn.attempts").inc(totals["attempts"])
        registry.counter("profile.txn.commits").inc(totals["commits"])
        registry.counter("profile.txn.aborts").inc(totals["aborts"])
        registry.counter("profile.cycles_lost").inc(totals["cycles_lost"])
        registry.counter("profile.deferral_cycles").inc(
            totals["deferral_cycles"])
        for lock in snap["locks"].values():
            for cause, count in lock["aborts_by_cause"].items():
                registry.counter(f"profile.aborts.{cause}").inc(count)
        registry.gauge("profile.commit_rate").set(totals["commit_rate"])
        registry.gauge("profile.locks").set(len(snap["locks"]))


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def describe_chain(chain: dict) -> str:
    """One abort's causal chain as a sentence, e.g. ``txn on cpu 3
    (lock 0x40 @ list:push) aborted at t=1234: conflicting access to
    line 0x80 by cpu 1 (conflict-lost), 210 cycles lost``."""
    lock = _lock_key(chain.get("lock"))
    pc = chain.get("pc") or "?"
    where = chain.get("conflict_line")
    where_s = f" to line {where:#x}" if where is not None else ""
    aborter = chain.get("aborter", -1)
    by = f" by cpu {aborter}" if aborter is not None and aborter >= 0 else ""
    return (f"txn on cpu {chain['victim']} (lock {lock} @ {pc}) aborted "
            f"at t={chain['time']}: conflicting access{where_s}{by} "
            f"({chain['reason']}), {chain['cycles_lost']} cycles lost")


def critical_path(snapshot: dict) -> list[tuple[str, dict]]:
    """Locks ranked by cycles lost to aborts + deferral (descending)."""
    return sorted(snapshot.get("locks", {}).items(),
                  key=lambda item: (-item[1]["cycles_contended"], item[0]))


def matrix_canonical_json(snapshot: dict) -> str:
    """The conflict matrix serialized canonically (sorted keys, no
    whitespace) -- the byte-for-byte comparison form the acceptance
    tests use for live ≡ post-hoc."""
    return json.dumps(snapshot.get("conflicts", {}), sort_keys=True,
                      separators=(",", ":"))


def render_markdown(snapshot: dict, title: str = "contention profile"
                    ) -> str:
    """The profile as a readable markdown report: critical-path lock
    table, the conflict matrix and the top causal chains."""
    lines = [f"# {title}", ""]
    totals = snapshot.get("totals", {})
    lines.append(
        f"{totals.get('attempts', 0)} elision attempts, "
        f"{totals.get('commits', 0)} commits "
        f"(rate {totals.get('commit_rate', 0.0):.3f}), "
        f"{totals.get('aborts', 0)} aborts costing "
        f"{totals.get('cycles_lost', 0)} cycles; "
        f"{totals.get('deferrals', 0)} deferrals costing "
        f"{totals.get('deferral_cycles', 0)} wait cycles.")
    if totals.get("unclosed"):
        lines.append(f"{totals['unclosed']} transaction(s) still open "
                     f"at end of run.")
    lines += ["", "## critical path (cycles lost to aborts + deferral)",
              "",
              "| lock | site | attempts | commits | rate | aborts "
              "| top cause | cycles lost | defer wait |",
              "|---|---|---|---|---|---|---|---|---|"]
    for lock, stats in critical_path(snapshot):
        pcs = stats.get("pcs", {})
        site = max(pcs, key=pcs.get) if pcs else "?"
        causes = stats.get("aborts_by_cause", {})
        top = (max(causes, key=causes.get)
               if causes else "-")
        lines.append(
            f"| {lock} | {site} | {stats['attempts']} "
            f"| {stats['commits']} | {stats['commit_rate']:.3f} "
            f"| {stats['aborts']} | {top} | {stats['cycles_lost']} "
            f"| {stats['deferral_cycles']} |")
    conflicts = snapshot.get("conflicts", {})
    if conflicts:
        aborters = sorted({a for row in conflicts.values() for a in row},
                          key=lambda a: int(a))
        lines += ["", "## who aborts whom (victim rows, aborter columns;"
                      " -1 = unattributed)", "",
                  "| victim \\ aborter | " + " | ".join(
                      f"cpu {a}" for a in aborters) + " |",
                  "|---" * (len(aborters) + 1) + "|"]
        for victim in sorted(conflicts, key=int):
            row = conflicts[victim]
            lines.append(f"| cpu {victim} | " + " | ".join(
                str(row.get(a, 0)) for a in aborters) + " |")
    chains = snapshot.get("chains", [])
    if chains:
        lines += ["", "## causal chains (first "
                      f"{min(len(chains), 10)} of {len(chains)})", ""]
        for chain in chains[:10]:
            lines.append(f"- {describe_chain(chain)}")
    return "\n".join(lines) + "\n"


def render_folded(snapshot: dict) -> str:
    """Folded-stack output (``lock;site;outcome cycles``) suitable for
    standard flamegraph tooling."""
    out = [f"{stack} {cycles}"
           for stack, cycles in sorted(snapshot.get("folded", {}).items())]
    return "\n".join(out) + ("\n" if out else "")
