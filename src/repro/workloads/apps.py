"""Synthetic application kernels (the paper's Table 1 / Figure 11 suite).

The paper evaluates seven SPLASH/SPLASH-2 codes chosen for their
fine-grain locking behaviour.  We cannot run the original binaries, so
each kernel here reproduces the *locking and critical-section signature*
the paper reports for its namesake -- lock count, contention level,
critical-section footprint, conflict pattern, and the resource-overflow
behaviour -- on synthetic data in simulated memory:

================  =====================================================
``ocean_cont``    a few global counter locks, long compute phases; lock
                  time is a tiny fraction of execution (TLR ~ BASE).
``water_nsq``     frequent synchronization to evenly-spread molecule
                  locks, essentially uncontended; MCS pays its software
                  overhead on every acquire and loses to BASE.
``raytrace``      one work-list lock plus counter locks, moderate
                  contention (paper: ~16% lock contribution).
``radiosity``     a hot central task queue -- the most contended code;
                  the paper's biggest TLR win (1.47x).
``barnes``        octree cell locks during tree build: contended locks
                  *with real data conflicts*; sub-optimal conflict
                  ordering makes TLR restart and MCS slightly wins.
``cholesky``      task queue plus column locks with large critical
                  sections; ~4% of dynamic critical sections overflow
                  the speculative write buffer, forcing lock
                  acquisitions (paper: 3.7%).
``mp3d``          very frequent locking to a lock array too large for
                  the L1; locks are uncontended but miss constantly.
                  TLR removes the lock-ownership misses (1.40x) while
                  MCS's overhead is disastrous (BASE/MCS = 1.47x).
================  =====================================================

Every kernel validates its final memory image against the sequential
specification (total increments conserved), so any serializability bug in
the memory system fails the run rather than skewing the numbers.

``ALL_APPS`` maps paper benchmark names to builders with the Figure 11
workload scale as defaults; ``coarse mp3d`` (one lock for every cell) is
the paper's coarse-grain-vs-fine-grain experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.runtime.env import ThreadEnv
from repro.runtime.program import Workload
from repro.workloads.common import AddressSpace


@dataclass
class _Region:
    """One lock-protected region: a lock and its data lines."""

    lock: int
    data: list[int]
    hits: int = 0   # expected update count (filled in by validators)


def _pick_weighted(rng: random.Random, weights: list[float]) -> int:
    """Weighted index choice (used for skewed lock popularity)."""
    total = sum(weights)
    x = rng.random() * total
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        if x <= acc:
            return i
    return len(weights) - 1


def _update_body(region: _Region, reads: int, writes: int,
                 work: int, pc: str, rotate: int = 0):
    """A critical-section body: read/modify/write ``writes`` of the
    region's data words (each data word counts updates), plus extra
    plain reads, plus in-section compute."""

    def body(env: ThreadEnv) -> Generator:
        for i in range(writes):
            addr = region.data[(rotate + i) % len(region.data)]
            value = yield env.read(addr, pc=f"{pc}.rw{i}.ld")
            yield env.write(addr, value + 1, pc=f"{pc}.rw{i}.st")
        for i in range(reads):
            addr = region.data[(rotate + writes + i) % len(region.data)]
            yield env.read(addr, pc=f"{pc}.rd{i}")
        if work:
            yield env.compute(work)

    return body


def _make_validator(regions: list[_Region], writes_per_cs: int):
    def validate(store) -> None:
        for idx, region in enumerate(regions):
            expected = [0] * len(region.data)
            for n in range(region.hits):
                for i in range(writes_per_cs):
                    expected[i % len(region.data)] += 1
            for addr, want in zip(region.data, expected):
                got = store.read(addr)
                assert got == want, (
                    f"region {idx} word {addr:#x}: {got} != {want}")
    return validate


def _generic_app(name: str, num_threads: int, *, iters_per_thread: int,
                 num_regions: int, data_lines_per_region: int,
                 cs_writes: int, cs_reads: int, cs_work: int,
                 outside_work: int, weights: Optional[list[float]] = None,
                 private_lines: int = 0, private_touches: int = 0,
                 fair_hi: int = 200, rotate_writes: bool = False,
                 single_lock: bool = False, seed: int = 1234) -> Workload:
    """The shared engine behind most kernels.

    Each thread loops: pick a region (uniform or weighted), update it
    under its lock, then do ``outside_work`` cycles of compute touching
    ``private_touches`` of its private lines (cache pressure without
    sharing).  Region choice is made deterministically per (seed, thread,
    iteration) so the expected update counts are known for validation.
    """
    space = AddressSpace()
    shared_lock = space.alloc_word() if single_lock else None
    regions = [
        _Region(lock=shared_lock if single_lock else space.alloc_word(),
                data=space.alloc_lines(data_lines_per_region))
        for _ in range(num_regions)
    ]
    privates = {
        tid: space.alloc_lines(private_lines)
        for tid in range(num_threads)
    } if private_lines else {}

    # Pre-draw every thread's region sequence so validation is exact.
    choices: dict[int, list[int]] = {}
    for tid in range(num_threads):
        rng = random.Random(f"{seed}:{name}:{tid}")
        seq = []
        for _ in range(iters_per_thread):
            if weights is None:
                seq.append(rng.randrange(num_regions))
            else:
                seq.append(_pick_weighted(rng, weights))
        choices[tid] = seq
        for region_idx in seq:
            regions[region_idx].hits += 1

    def make_thread(tid: int):
        my_private = privates.get(tid, [])

        def thread(env: ThreadEnv) -> Generator:
            for it, region_idx in enumerate(choices[tid]):
                region = regions[region_idx]
                rotate = tid % max(1, data_lines_per_region) \
                    if rotate_writes else 0
                body = _update_body(region, cs_reads, cs_writes, cs_work,
                                    pc=f"{name}.cs", rotate=rotate)
                yield from env.critical(region.lock, body, pc=f"{name}.l")
                if outside_work:
                    yield env.compute(outside_work)
                for i in range(private_touches):
                    addr = my_private[(it + i) % len(my_private)]
                    value = yield env.read(addr, pc=f"{name}.priv.ld")
                    yield env.write(addr, value + 1, pc=f"{name}.priv.st")
                yield env.compute(env.fair_delay(hi=fair_hi))

        return thread

    return Workload(
        name=name,
        threads=[make_thread(t) for t in range(num_threads)],
        validate=_make_validator(regions, cs_writes),
        lock_addrs={r.lock for r in regions},
        meta={"space": space, "regions": len(regions),
              "iters": iters_per_thread},
    )


# ----------------------------------------------------------------------
# The seven Figure 11 kernels
# ----------------------------------------------------------------------
def ocean_cont(num_threads: int, scale: int = 24) -> Workload:
    """Hydrodynamics: a few counter locks, dominated by grid compute."""
    return _generic_app(
        "ocean-cont", num_threads, iters_per_thread=scale,
        num_regions=4, data_lines_per_region=1,
        cs_writes=1, cs_reads=0, cs_work=5,
        outside_work=3200, private_lines=16, private_touches=8)


def water_nsq(num_threads: int, scale: int = 96) -> Workload:
    """Water molecules: frequent, evenly-spread, uncontended locks."""
    return _generic_app(
        "water-nsq", num_threads, iters_per_thread=scale,
        num_regions=8 * num_threads, data_lines_per_region=1,
        cs_writes=1, cs_reads=1, cs_work=8,
        outside_work=700, private_lines=8, private_touches=4)


def raytrace(num_threads: int, scale: int = 64) -> Workload:
    """Image rendering: one work-list lock plus counter locks."""
    # Region 0 is the work list (hot); regions 1..4 are counters.
    weights = [4.0] + [1.0] * 4
    return _generic_app(
        "raytrace", num_threads, iters_per_thread=scale,
        num_regions=5, data_lines_per_region=1,
        cs_writes=1, cs_reads=1, cs_work=10,
        outside_work=900, weights=weights,
        private_lines=12, private_touches=6)


def radiosity(num_threads: int, scale: int = 64) -> Workload:
    """3-D rendering: a hot central task queue, high contention."""
    weights = [12.0, 1.0, 1.0]
    return _generic_app(
        "radiosity", num_threads, iters_per_thread=scale,
        num_regions=3, data_lines_per_region=2,
        cs_writes=1, cs_reads=1, cs_work=25,
        outside_work=1100, weights=weights,
        private_lines=6, private_touches=2)


def barnes(num_threads: int, scale: int = 48, tree_cells: int = 15) -> Workload:
    """N-body octree build: cell locks with true data conflicts.

    Cells form an implicit tree; popularity decays with depth, so
    shallow cells are contended and concurrently *written* -- the
    data-conflict pattern that makes TLR restart on sub-optimal
    orderings while MCS's software queue stays orderly (the one paper
    benchmark where MCS beats TLR).
    """
    weights = []
    depth = 0
    count_at_depth = 1
    produced = 0
    while produced < tree_cells:
        take = min(count_at_depth, tree_cells - produced)
        weights.extend([1.0 / (3.0 ** depth)] * take)
        produced += take
        count_at_depth *= 2
        depth += 1
    return _generic_app(
        "barnes", num_threads, iters_per_thread=scale,
        num_regions=tree_cells, data_lines_per_region=3,
        cs_writes=3, cs_reads=1, cs_work=60,
        outside_work=1300, weights=weights,
        private_lines=8, private_touches=2, rotate_writes=True)


def mp3d(num_threads: int, scale: int = 160, cells: Optional[int] = None,
         coarse: bool = False) -> Workload:
    """Rarefied-flow simulation: very frequent locking to a cell-lock
    array too large for the L1.

    ``coarse=True`` replaces the per-cell locks by one single lock over
    all cells (the paper's coarse-grain experiment, Section 6.3): data
    footprint shrinks, memory behaviour improves, and TLR turns the
    serialization into concurrency -- while BASE/MCS choke on the
    contention.
    """
    if cells is None:
        cells = 160   # lock+data lines mostly resident; locks bounce under BASE
    name = "mp3d-coarse" if coarse else "mp3d"
    return _generic_app(
        name, num_threads, iters_per_thread=scale,
        num_regions=cells, data_lines_per_region=1,
        cs_writes=1, cs_reads=0, cs_work=6,
        outside_work=20, private_lines=4, private_touches=1,
        fair_hi=40, single_lock=coarse)


def cholesky(num_threads: int, scale: int = 40, columns: int = 32,
             overflow_fraction: float = 0.08) -> Workload:
    """Matrix factoring: task queue plus column locks; a tail of large
    critical sections overflows the speculative write buffer.

    Tasks are drawn from a shared counter under the task-queue lock;
    each task then locks one column and updates every entry.  Column
    heights follow a two-point distribution: mostly small, with
    ``overflow_fraction`` of tasks hitting a column taller than the
    64-line write buffer (the paper: 3.7% of dynamic critical sections,
    80% write-buffer / 20% cache limited).
    """
    space = AddressSpace()
    task_lock = space.alloc_word()
    task_counter = space.alloc_word()
    total_tasks = scale * num_threads
    # Column geometry: most columns small, the last one enormous.
    tall = max(1, round(columns * 0.08))
    heights = [12] * (columns - tall) + [80] * tall
    col_locks = [space.alloc_word() for _ in range(columns)]
    col_data = [space.alloc_lines(h) for h in heights]
    # Pre-draw the task -> column map.
    rng = random.Random(99)
    weights = [overflow_fraction / tall if i >= columns - tall
               else (1.0 - overflow_fraction) / (columns - tall)
               for i in range(columns)]
    task_columns = [_pick_weighted(rng, weights) for _ in range(total_tasks)]
    col_hits = [0] * columns
    for col in task_columns:
        col_hits[col] += 1

    def make_thread(tid: int):
        def thread(env: ThreadEnv) -> Generator:
            while True:
                def pop_task(env: ThreadEnv) -> Generator:
                    t = yield env.read(task_counter, pc="chol.task.ld")
                    if t >= total_tasks:
                        return -1
                    yield env.write(task_counter, t + 1, pc="chol.task.st")
                    return t

                task = yield from env.critical(task_lock, pop_task,
                                               pc="chol.q")
                if task < 0:
                    return
                col = task_columns[task]

                def update_column(env: ThreadEnv) -> Generator:
                    for addr in col_data[col]:
                        value = yield env.read(addr, pc="chol.col.ld")
                        yield env.write(addr, value + 1, pc="chol.col.st")

                yield from env.critical(col_locks[col], update_column,
                                        pc="chol.c")
                yield env.compute(1400)
                yield env.compute(env.fair_delay())
        return thread

    def validate(store) -> None:
        got_tasks = store.read(task_counter)
        assert got_tasks == total_tasks, (
            f"task counter {got_tasks} != {total_tasks}")
        for col in range(columns):
            for addr in col_data[col]:
                got = store.read(addr)
                assert got == col_hits[col], (
                    f"column {col} word {addr:#x}: {got} != {col_hits[col]}")

    return Workload(
        name="cholesky",
        threads=[make_thread(t) for t in range(num_threads)],
        validate=validate,
        lock_addrs={task_lock, *col_locks},
        meta={"space": space, "columns": columns, "tasks": total_tasks},
    )


AppBuilder = Callable[[int], Workload]

ALL_APPS: dict[str, AppBuilder] = {
    "ocean-cont": ocean_cont,
    "water-nsq": water_nsq,
    "raytrace": raytrace,
    "radiosity": radiosity,
    "barnes": barnes,
    "cholesky": cholesky,
    "mp3d": mp3d,
}
