"""Benchmarks: the paper's microbenchmarks and synthetic applications."""

from repro.workloads.apps import (ALL_APPS, barnes, cholesky, mp3d,
                                  ocean_cont, radiosity, raytrace,
                                  water_nsq)
from repro.workloads.common import AddressSpace
from repro.workloads.generator import WorkloadSpec, generate, random_spec
from repro.workloads.microbench import (linked_list, multiple_counter,
                                        single_counter)

__all__ = ["AddressSpace", "multiple_counter", "single_counter",
           "linked_list", "ALL_APPS", "ocean_cont", "water_nsq",
           "raytrace", "radiosity", "barnes", "cholesky", "mp3d",
           "WorkloadSpec", "generate", "random_spec"]
