"""Parameterized synthetic workload generation.

:class:`WorkloadSpec` is the declarative form of the knobs the
application kernels in :mod:`repro.workloads.apps` are hand-tuned
instances of: how many lock-protected regions, how popular each is, how
big a critical section's footprint is, how much work happens outside.
``generate`` turns a spec into a runnable, self-validating
:class:`Workload`; ``random_spec`` draws a spec from a seeded RNG within
sane bounds (used by the property-test suite and for fuzzing the
protocol with diverse locking behaviours).

This is also the extension point for users studying their own workload
shapes: describe the locking signature, generate, and run under any
scheme.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.runtime.env import ThreadEnv
from repro.runtime.program import Workload
from repro.workloads.common import AddressSpace


@dataclass
class WorkloadSpec:
    """Declarative locking signature for a synthetic workload."""

    name: str = "generated"
    num_threads: int = 4
    iters_per_thread: int = 16
    num_regions: int = 4
    data_lines_per_region: int = 1
    cs_reads: int = 0
    cs_writes: int = 1
    cs_work: int = 10
    outside_work: int = 100
    region_weights: Optional[list[float]] = None  # None = uniform
    rotate_writes: bool = False   # thread-dependent write order
    single_lock: bool = False     # one lock over all regions
    nesting: int = 1              # critical-section nesting depth
    fair_delay_hi: int = 100
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_threads < 1 or self.num_regions < 1:
            raise ValueError("need at least one thread and one region")
        if self.cs_writes < 0 or self.cs_reads < 0:
            raise ValueError("negative critical-section footprint")
        if self.nesting < 1:
            raise ValueError("nesting must be >= 1")
        if self.region_weights is not None \
                and len(self.region_weights) != self.num_regions:
            raise ValueError("one weight per region required")


def random_spec(rng: random.Random, num_threads: int = 4) -> WorkloadSpec:
    """Draw a random but well-formed spec (bounded for test runtimes)."""
    num_regions = rng.randint(1, 6)
    weights = None
    if rng.random() < 0.5:
        weights = [rng.uniform(0.5, 8.0) for _ in range(num_regions)]
    return WorkloadSpec(
        name=f"fuzz-{rng.randrange(1 << 16)}",
        num_threads=num_threads,
        iters_per_thread=rng.randint(2, 10),
        num_regions=num_regions,
        data_lines_per_region=rng.randint(1, 3),
        cs_reads=rng.randint(0, 2),
        cs_writes=rng.randint(1, 3),
        cs_work=rng.randint(0, 40),
        outside_work=rng.randint(0, 300),
        region_weights=weights,
        rotate_writes=rng.random() < 0.4,
        single_lock=rng.random() < 0.3,
        nesting=rng.choice([1, 1, 1, 2]),
        fair_delay_hi=rng.randint(10, 120),
        seed=rng.randrange(1 << 30),
    )


def _weighted_choice(rng: random.Random, weights: list[float]) -> int:
    total = sum(weights)
    x = rng.random() * total
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        if x <= acc:
            return i
    return len(weights) - 1


def generate(spec: WorkloadSpec) -> Workload:
    """Materialize a spec into a runnable, self-validating workload."""
    space = AddressSpace()
    shared_lock = space.alloc_word() if spec.single_lock else None
    locks = [shared_lock if spec.single_lock else space.alloc_word()
             for _ in range(spec.num_regions)]
    # With nesting > 1, inner sections take a second lock ring.
    inner_locks = [space.alloc_word() for _ in range(spec.num_regions)] \
        if spec.nesting > 1 else None
    data = [space.alloc_lines(spec.data_lines_per_region)
            for _ in range(spec.num_regions)]

    # Pre-draw region choices so expected counts are exact.
    choices: dict[int, list[int]] = {}
    hits = [0] * spec.num_regions
    for tid in range(spec.num_threads):
        rng = random.Random(f"{spec.seed}:{spec.name}:{tid}")
        seq = []
        for _ in range(spec.iters_per_thread):
            if spec.region_weights is None:
                seq.append(rng.randrange(spec.num_regions))
            else:
                seq.append(_weighted_choice(rng, spec.region_weights))
        choices[tid] = seq
        for region in seq:
            hits[region] += 1

    def region_body(region: int, rotate: int):
        lines = data[region]

        def body(env: ThreadEnv) -> Generator:
            for i in range(spec.cs_writes):
                addr = lines[(rotate + i) % len(lines)]
                value = yield env.read(addr, pc=f"{spec.name}.w{i}.ld")
                yield env.write(addr, value + 1, pc=f"{spec.name}.w{i}.st")
            for i in range(spec.cs_reads):
                addr = lines[(rotate + spec.cs_writes + i) % len(lines)]
                yield env.read(addr, pc=f"{spec.name}.r{i}")
            if spec.cs_work:
                yield env.compute(spec.cs_work)

        return body

    def make_thread(tid: int):
        def thread(env: ThreadEnv) -> Generator:
            for region in choices[tid]:
                rotate = (tid % max(1, spec.data_lines_per_region)
                          if spec.rotate_writes else 0)
                body = region_body(region, rotate)
                if inner_locks is not None:
                    inner = inner_locks[region]

                    def outer(env: ThreadEnv, inner=inner,
                              body=body) -> Generator:
                        yield from env.critical(inner, body,
                                                pc=f"{spec.name}.in")

                    yield from env.critical(locks[region], outer,
                                            pc=f"{spec.name}.out")
                else:
                    yield from env.critical(locks[region], body,
                                            pc=f"{spec.name}.cs")
                if spec.outside_work:
                    yield env.compute(spec.outside_work)
                yield env.compute(env.fair_delay(lo=1,
                                                 hi=spec.fair_delay_hi))

        return thread

    def validate(store) -> None:
        for region in range(spec.num_regions):
            lines = data[region]
            expected = [0] * len(lines)
            for _ in range(hits[region]):
                for i in range(spec.cs_writes):
                    # Rotation permutes which *line* each write lands on
                    # per thread, so only the total over the region is
                    # invariant when rotation is on.
                    expected[i % len(lines)] += 1
            got = [store.read(addr) for addr in lines]
            if spec.rotate_writes:
                assert sum(got) == sum(expected), (
                    f"region {region}: total {sum(got)} != {sum(expected)}")
            else:
                assert got == expected, (
                    f"region {region}: {got} != {expected}")

    lock_addrs = set(locks) | (set(inner_locks) if inner_locks else set())
    return Workload(name=spec.name,
                    threads=[make_thread(t)
                             for t in range(spec.num_threads)],
                    validate=validate, lock_addrs=lock_addrs,
                    meta={"space": space, "spec": spec})
