"""The paper's three microbenchmarks (Section 5.1).

* ``multiple_counter`` -- coarse-grain locking, no data conflicts: n
  counters protected by a *single* lock, each processor updating only its
  own counter.  The lock serializes BASE/MCS; SLE/TLR commit concurrently
  (Figure 8).

* ``single_counter`` -- fine-grain, high conflict: one counter, one lock,
  every processor incrementing the same word.  No exploitable parallelism;
  the question is hand-off efficiency (Figure 9).

* ``linked_list`` -- fine-grain, dynamic conflicts: a doubly-linked queue
  with Head and Tail under one lock.  Dequeuers touch Head, enqueuers
  Tail, except when the queue is empty or singleton -- concurrency that is
  impossible to exploit with the single lock but falls out of TLR's
  data-conflict-based ordering (Figure 10).

Iteration counts are scaled from the paper's 2^24/2^16 to event-simulator
scale; each ``total_*`` parameter is *total system work*, divided among
the threads, so points along a processor-count sweep do identical work
(matching the paper's methodology).

Every workload carries a validator that replays the sequential
specification against final memory -- the functional-checker role.
"""

from __future__ import annotations

from typing import Generator

from repro.runtime.env import ThreadEnv
from repro.runtime.program import Workload
from repro.workloads.common import AddressSpace

NULL = 0

# Node field offsets (each node occupies one padded line).
_PREV = 0
_NEXT = 1
_VALUE = 2


def multiple_counter(num_threads: int, total_increments: int = 4096,
                     think_cycles: int = 20) -> Workload:
    """Coarse-grain/no-conflicts: n counters, one lock."""
    space = AddressSpace()
    lock = space.alloc_word()
    counters = space.alloc_lines(num_threads)
    iters = max(1, total_increments // num_threads)

    def make_thread(tid: int):
        counter = counters[tid]

        def thread(env: ThreadEnv) -> Generator:
            def body(env: ThreadEnv) -> Generator:
                value = yield env.read(counter, pc="mc.load")
                yield env.compute(think_cycles)
                yield env.write(counter, value + 1, pc="mc.store")

            for _ in range(iters):
                yield from env.critical(lock, body, pc="mc")
                yield env.compute(env.fair_delay())

        return thread

    def validate(store) -> None:
        for tid, counter in enumerate(counters[:num_threads]):
            got = store.read(counter)
            assert got == iters, (
                f"counter[{tid}] = {got}, expected {iters}")

    return Workload(name="multiple-counter",
                    threads=[make_thread(t) for t in range(num_threads)],
                    validate=validate, lock_addrs={lock},
                    meta={"space": space, "iters": iters})


def single_counter(num_threads: int, total_increments: int = 2048,
                   think_cycles: int = 10) -> Workload:
    """Fine-grain/high-conflict: one counter, one lock."""
    space = AddressSpace()
    lock = space.alloc_word()
    counter = space.alloc_word()
    iters = max(1, total_increments // num_threads)

    def make_thread(tid: int):
        def thread(env: ThreadEnv) -> Generator:
            def body(env: ThreadEnv) -> Generator:
                value = yield env.read(counter, pc="sc.load")
                yield env.compute(think_cycles)
                yield env.write(counter, value + 1, pc="sc.store")

            for _ in range(iters):
                yield from env.critical(lock, body, pc="sc")
                yield env.compute(env.fair_delay())

        return thread

    expected = iters * num_threads

    def validate(store) -> None:
        got = store.read(counter)
        assert got == expected, f"counter = {got}, expected {expected}"

    return Workload(name="single-counter",
                    threads=[make_thread(t) for t in range(num_threads)],
                    validate=validate, lock_addrs={lock},
                    meta={"space": space, "iters": iters,
                          "counter": counter})


def linked_list(num_threads: int, total_ops: int = 2048,
                initial_items: int | None = None,
                think_cycles: int = 10) -> Workload:
    """Fine-grain/dynamic-conflicts: one lock, a doubly-linked queue."""
    space = AddressSpace()
    lock = space.alloc_word()
    head = space.alloc_word()
    tail = space.alloc_word()
    ready = space.alloc_word()
    if initial_items is None:
        initial_items = max(2, num_threads)
    nodes = space.alloc_lines(initial_items)
    iters = max(1, total_ops // num_threads)

    def initializer(env: ThreadEnv) -> Generator:
        """Thread 0 builds the initial queue before doing its share."""
        prev = NULL
        for i, node in enumerate(nodes):
            yield env.write(node + _PREV, prev, pc="ll.init")
            yield env.write(node + _NEXT, NULL, pc="ll.init")
            yield env.write(node + _VALUE, i + 1, pc="ll.init")
            if prev != NULL:
                yield env.write(prev + _NEXT, node, pc="ll.init")
            prev = node
        yield env.write(head, nodes[0], pc="ll.init")
        yield env.write(tail, nodes[-1], pc="ll.init")
        yield env.write(ready, 1, pc="ll.ready")  # start flag

    def dequeue_body(env: ThreadEnv) -> Generator:
        h = yield env.read(head, pc="ll.deq.head")
        if h == NULL:
            return NULL
        nxt = yield env.read(h + _NEXT, pc="ll.deq.next")
        yield env.write(head, nxt, pc="ll.deq.sethead")
        if nxt == NULL:
            yield env.write(tail, NULL, pc="ll.deq.settail")
        else:
            yield env.write(nxt + _PREV, NULL, pc="ll.deq.setprev")
        return h

    def make_enqueue_body(node: int):
        def enqueue_body(env: ThreadEnv) -> Generator:
            t = yield env.read(tail, pc="ll.enq.tail")
            yield env.write(node + _PREV, t, pc="ll.enq.setprev")
            yield env.write(node + _NEXT, NULL, pc="ll.enq.setnext")
            yield env.write(tail, node, pc="ll.enq.settail")
            if t == NULL:
                yield env.write(head, node, pc="ll.enq.sethead")
            else:
                yield env.write(t + _NEXT, node, pc="ll.enq.link")
            return None
        return enqueue_body

    def make_thread(tid: int):
        def thread(env: ThreadEnv) -> Generator:
            if tid == 0:
                yield from initializer(env)
            else:
                # Wait for the queue to be built.
                while True:
                    built = yield env.read(ready, pc="ll.waitready")
                    if built:
                        break
                    yield env.compute(100)
            for _ in range(iters):
                node = NULL
                while node == NULL:
                    node = yield from env.critical(lock, dequeue_body,
                                                   pc="ll.deq")
                    if node == NULL:
                        yield env.compute(env.fair_delay())
                yield env.compute(think_cycles)
                yield from env.critical(lock, make_enqueue_body(node),
                                        pc="ll.enq")
                yield env.compute(env.fair_delay())

        return thread

    def validate(store) -> None:
        # Walk the final queue: every initial node present exactly once,
        # prev/next mutually consistent, tail reachable and terminal.
        seen: list[int] = []
        cursor = store.read(head)
        prev = NULL
        node_set = set(nodes)
        while cursor != NULL:
            assert cursor in node_set, f"foreign node {cursor:#x} in list"
            assert cursor not in seen, f"cycle at node {cursor:#x}"
            assert store.read(cursor + _PREV) == prev, (
                f"bad prev pointer at {cursor:#x}")
            seen.append(cursor)
            prev = cursor
            cursor = store.read(cursor + _NEXT)
        assert len(seen) == len(nodes), (
            f"queue has {len(seen)} nodes, expected {len(nodes)}")
        assert store.read(tail) == seen[-1], "tail does not match last node"

    return Workload(name="doubly-linked-list",
                    threads=[make_thread(t) for t in range(num_threads)],
                    validate=validate, lock_addrs={lock},
                    meta={"space": space, "iters": iters, "head": head,
                          "tail": tail, "nodes": list(nodes)})
