"""Shared workload helpers: address allocation and padding.

Addresses are word indices (8-byte words, 8 per 64-byte line).  The paper
pads its data structures to eliminate false sharing; :class:`AddressSpace`
makes that the default -- each allocation can start on a fresh line -- so
any sharing the benchmarks exhibit is true sharing.
"""

from __future__ import annotations

from repro.cpu.isa import WORDS_PER_LINE


class AddressSpace:
    """A bump allocator over simulated word addresses."""

    def __init__(self, base_line: int = 16):
        # Start a few lines in so address 0 stays an obvious poison value
        # (NULL for the pointer-based workloads).
        self._next_word = base_line * WORDS_PER_LINE

    def alloc_line(self) -> int:
        """First word address of a fresh, untouched cache line."""
        self._align()
        addr = self._next_word
        self._next_word += WORDS_PER_LINE
        return addr

    def alloc_word(self, padded: bool = True) -> int:
        """One word; on its own line when ``padded`` (the default)."""
        if padded:
            return self.alloc_line()
        addr = self._next_word
        self._next_word += 1
        return addr

    def alloc_block(self, words: int, padded: bool = True) -> int:
        """A contiguous run of ``words`` words."""
        if padded:
            self._align()
        addr = self._next_word
        self._next_word += words
        if padded:
            self._align()
        return addr

    def alloc_lines(self, count: int) -> list[int]:
        return [self.alloc_line() for _ in range(count)]

    def _align(self) -> None:
        rem = self._next_word % WORDS_PER_LINE
        if rem:
            self._next_word += WORDS_PER_LINE - rem
