"""Chong-style TM litmus scenarios as verify conformance checks.

Small, adversarial transaction shapes whose *intermediate* states
expose classic TM anomalies that the full microbenchmarks rarely
provoke.  Each scenario carries its invariant inside the workload: a
checker transaction re-reads the shared state under the (elided) lock
and bumps a ``violations`` word when the invariant is broken, so a
serializability bug becomes a deterministic validation failure --
wired through ``repro verify`` (``--litmus``), every failing seed is
shrunk and auto-captures a record log for time-travel debugging.

* ``litmus_write_skew`` -- the write-skew anomaly across two cache
  lines: two roles each read *both* balances but withdraw only from
  their own; the ``x + y >= 1`` invariant survives any serial order
  but dies when two withdrawals interleave unserializably.
* ``litmus_publication`` -- publication via an elided lock: a writer
  publishes ``data`` then ``flag`` inside one critical section;
  readers must never observe ``flag`` ahead of ``data``.
* ``litmus_atomicity`` -- a paired update (``x`` and ``y`` always
  incremented together); observers must never see a torn state where
  ``x != y``.
"""

from __future__ import annotations

from typing import Generator

from repro.runtime.env import ThreadEnv
from repro.runtime.program import Workload
from repro.workloads.common import AddressSpace

#: The scenarios ``repro verify --litmus`` fans out, by registry name.
LITMUS_WORKLOADS: tuple[str, ...] = (
    "litmus-write-skew", "litmus-publication", "litmus-atomicity")


def litmus_write_skew(num_threads: int, total_rounds: int = 96,
                      think_cycles: int = 8) -> Workload:
    """Write skew across two lines under one elided lock.

    Balances ``x`` and ``y`` start at 1.  A withdrawing transaction
    reads both and decrements *its own* balance only when the combined
    funds allow (``x + y >= 2``); a later transaction restores it.
    Any serial order keeps ``x + y >= 1`` at all times -- observing a
    combined balance of zero is the write-skew anomaly.
    """
    space = AddressSpace()
    lock = space.alloc_word()
    x = space.alloc_word()
    y = space.alloc_word()
    violations = space.alloc_word()
    ready = space.alloc_word()
    iters = max(1, total_rounds // num_threads)

    def make_thread(tid: int):
        own, other = (x, y) if tid % 2 == 0 else (y, x)

        def withdraw(env: ThreadEnv) -> Generator:
            mine = yield env.read(own, pc="ws.own")
            theirs = yield env.read(other, pc="ws.other")
            if mine + theirs >= 2 and mine >= 1:
                yield env.write(own, mine - 1, pc="ws.take")
                return True
            return False

        def observe(env: ThreadEnv) -> Generator:
            sx = yield env.read(x, pc="ws.obs.x")
            sy = yield env.read(y, pc="ws.obs.y")
            if sx + sy < 1:
                seen = yield env.read(violations, pc="ws.obs.v")
                yield env.write(violations, seen + 1, pc="ws.obs.bump")
            return None

        def restore(env: ThreadEnv) -> Generator:
            mine = yield env.read(own, pc="ws.restore")
            yield env.write(own, mine + 1, pc="ws.deposit")
            return None

        def thread(env: ThreadEnv) -> Generator:
            if tid == 0:
                yield env.write(x, 1, pc="ws.init")
                yield env.write(y, 1, pc="ws.init")
                yield env.write(ready, 1, pc="ws.ready")
            else:
                while not (yield env.read(ready, pc="ws.waitready")):
                    yield env.compute(100)
            for _ in range(iters):
                took = yield from env.critical(lock, withdraw, pc="ws.w")
                yield env.compute(think_cycles)
                yield from env.critical(lock, observe, pc="ws.o")
                if took:
                    yield from env.critical(lock, restore, pc="ws.r")
                yield env.compute(env.fair_delay())

        return thread

    def validate(store) -> None:
        got = store.read(violations)
        assert got == 0, (
            f"write-skew anomaly observed {got} time(s): combined "
            f"balance dropped below 1 inside a critical section")
        final_x, final_y = store.read(x), store.read(y)
        assert (final_x, final_y) == (1, 1), (
            f"unbalanced books: x={final_x} y={final_y}, expected 1/1 "
            f"(every withdrawal must be restored)")

    return Workload(name="litmus-write-skew",
                    threads=[make_thread(t) for t in range(num_threads)],
                    validate=validate, lock_addrs={lock},
                    meta={"space": space, "iters": iters,
                          "violations": violations})


def litmus_publication(num_threads: int, total_rounds: int = 96,
                       think_cycles: int = 8) -> Workload:
    """Publication via an elided lock: ``data`` then ``flag`` inside
    one critical section; a reader seeing ``flag != data`` caught the
    publication half-done."""
    space = AddressSpace()
    lock = space.alloc_word()
    data = space.alloc_word()
    flag = space.alloc_word()
    violations = space.alloc_word()
    iters = max(1, total_rounds // num_threads)

    def publish_body(value: int):
        def body(env: ThreadEnv) -> Generator:
            yield env.write(data, value, pc="pub.data")
            yield env.compute(think_cycles)  # widen the torn window
            yield env.write(flag, value, pc="pub.flag")
            return None
        return body

    def consume(env: ThreadEnv) -> Generator:
        published = yield env.read(flag, pc="pub.rdflag")
        payload = yield env.read(data, pc="pub.rddata")
        if published != payload:
            seen = yield env.read(violations, pc="pub.v")
            yield env.write(violations, seen + 1, pc="pub.bump")
        return None

    def make_thread(tid: int):
        def thread(env: ThreadEnv) -> Generator:
            for i in range(iters):
                if tid == 0:
                    yield from env.critical(lock, publish_body(i + 1),
                                            pc="pub.w")
                else:
                    yield from env.critical(lock, consume, pc="pub.r")
                yield env.compute(env.fair_delay())

        return thread

    def validate(store) -> None:
        got = store.read(violations)
        assert got == 0, (
            f"publication anomaly observed {got} time(s): flag was "
            f"visible ahead of its data")
        assert store.read(flag) == store.read(data) == iters, (
            f"final flag={store.read(flag)} data={store.read(data)}, "
            f"expected both == {iters}")

    return Workload(name="litmus-publication",
                    threads=[make_thread(t) for t in range(num_threads)],
                    validate=validate, lock_addrs={lock},
                    meta={"space": space, "iters": iters,
                          "violations": violations})


def litmus_atomicity(num_threads: int, total_rounds: int = 96,
                     think_cycles: int = 8) -> Workload:
    """Paired update: ``x`` and ``y`` (different lines) always move
    together; an observer seeing ``x != y`` caught a torn update."""
    space = AddressSpace()
    lock = space.alloc_word()
    x = space.alloc_word()
    y = space.alloc_word()
    violations = space.alloc_word()
    iters = max(1, total_rounds // num_threads)

    def update(env: ThreadEnv) -> Generator:
        vx = yield env.read(x, pc="at.rdx")
        yield env.compute(think_cycles)  # widen the torn window
        vy = yield env.read(y, pc="at.rdy")
        yield env.write(x, vx + 1, pc="at.wrx")
        yield env.write(y, vy + 1, pc="at.wry")
        return None

    def observe(env: ThreadEnv) -> Generator:
        vx = yield env.read(x, pc="at.obs.x")
        vy = yield env.read(y, pc="at.obs.y")
        if vx != vy:
            seen = yield env.read(violations, pc="at.obs.v")
            yield env.write(violations, seen + 1, pc="at.obs.bump")
        return None

    def make_thread(tid: int):
        def thread(env: ThreadEnv) -> Generator:
            for _ in range(iters):
                yield from env.critical(lock, update, pc="at.u")
                yield from env.critical(lock, observe, pc="at.o")
                yield env.compute(env.fair_delay())

        return thread

    expected = iters * num_threads

    def validate(store) -> None:
        got = store.read(violations)
        assert got == 0, (
            f"atomicity anomaly observed {got} time(s): x and y seen "
            f"torn inside a critical section")
        vx, vy = store.read(x), store.read(y)
        assert vx == vy == expected, (
            f"final x={vx} y={vy}, expected both == {expected}")

    return Workload(name="litmus-atomicity",
                    threads=[make_thread(t) for t in range(num_threads)],
                    validate=validate, lock_addrs={lock},
                    meta={"space": space, "iters": iters,
                          "violations": violations})
