"""Speculative Lock Elision (the enabling mechanism, Rajwar & Goodman 2001)."""

from repro.sle.elision import SpeculationManager

__all__ = ["SpeculationManager"]
