"""Speculative Lock Elision and transaction lifecycle control.

SLE (the paper's enabling mechanism) watches the dynamic instruction
stream for *silent store pairs*: a store-conditional that would flip a
lock from its free value, predicted to be undone by a later store writing
the free value back.  When the predictor is confident, the acquire store
is elided -- never issued, the lock line stays shared -- and the processor
enters speculative lock-free transaction mode.  The matching release store
is absorbed and triggers the atomic commit.

:class:`SpeculationManager` owns that lifecycle for one processor:

* elision decisions (per-PC confidence, nesting up to the configured
  depth, treat-inner-lock-as-data beyond it);
* restart policy -- plain SLE retries up to a threshold then *suppresses*
  the next elision so the lock is acquired for real; TLR retries forever
  on data conflicts (timestamps resolve them) and suppresses only on
  resource limits;
* TLR timestamp management -- one timestamp per transaction, retained
  across conflict restarts, advanced only on successful commit
  (Section 2.1.2's rules, via :class:`TimestampAuthority`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cpu.checkpoint import ElisionRecord, SpeculationCheckpoint
from repro.cpu.isa import StoreConditional, Write, line_of
from repro.cpu.predictor import StorePairPredictor
from repro.tlr.timestamp import TimestampAuthority
from repro.harness.config import SystemConfig
from repro.sim.stats import CpuStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cpu.processor import Processor


class SpeculationManager:
    """Per-processor elision/transaction controller."""

    def __init__(self, processor: "Processor", config: SystemConfig,
                 stats: CpuStats):
        self.processor = processor
        self.config = config
        self.stats = stats
        self.tlr = config.scheme.is_tlr
        self.enabled = config.scheme.speculates
        self.predictor = StorePairPredictor(
            entries=config.spec.store_pair_predictor_entries, tlr=self.tlr)
        self.authority = TimestampAuthority(processor.cpu_id)
        self.checkpoint: Optional[SpeculationCheckpoint] = None
        #: Mirror of ``checkpoint is not None``, kept as a plain
        #: attribute because the processor consults it on every memory
        #: operation and a property costs a Python call per read.
        self.active = False
        self._suppress_next = False
        self._attempts = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def root_pc(self) -> str:
        return self.checkpoint.elisions[0].pc if (
            self.checkpoint and self.checkpoint.elisions) else ""

    # ------------------------------------------------------------------
    # Elision (transaction start / nesting)
    # ------------------------------------------------------------------
    def try_elide(self, op: StoreConditional, free_value: int,
                  cs_depth: int) -> bool:
        """Decide whether to elide this candidate acquire store.

        Returns True when the store was elided (the processor reports SC
        success without writing).  False means the store must execute for
        real -- either speculation is off, confidence is low, the nesting
        budget is exhausted (inner lock treated as data), or a fallback
        was requested after a failure.
        """
        if not self.enabled:
            return False
        if self.checkpoint is not None:
            # Nested elision inside an ongoing transaction.
            if self.checkpoint.nest_level >= self.config.spec.elision_depth:
                return False  # treat the inner lock as ordinary data
            self.checkpoint.push(ElisionRecord(
                lock_addr=op.addr, free_value=free_value,
                held_value=op.value, pc=op.pc, depth=cs_depth))
            return True
        if self._suppress_next:
            self._suppress_next = False
            return False
        if not self.predictor.should_elide(op.pc):
            return False
        ts = self.authority.begin() if self.tlr else None
        self._attempts += 1
        self.checkpoint = SpeculationCheckpoint(
            start_time=self.processor.sim.now, ts=ts, root_depth=cs_depth,
            attempts=self._attempts)
        self.active = True
        self.checkpoint.push(ElisionRecord(
            lock_addr=op.addr, free_value=free_value,
            held_value=op.value, pc=op.pc, depth=cs_depth))
        self.stats.elisions_started += 1
        self.processor.controller.enter_speculation(ts)
        return True

    # ------------------------------------------------------------------
    # Release absorption (transaction end)
    # ------------------------------------------------------------------
    def absorbs_release(self, op: Write) -> bool:
        """Check a store against the elision stack.

        The second half of a silent store pair -- a store returning the
        lock to its free value -- is absorbed; if it closes the outermost
        elision, the transaction commits.  A store to an elided lock with
        a *different* value breaks the silent-pair assumption and kills
        the speculation.
        """
        if self.checkpoint is None:
            return False
        record = self.checkpoint.pop_matching(op.addr, op.value)
        if record is not None:
            if self.checkpoint.committed:
                self.processor.commit_transaction()
            return True
        if any(e.lock_addr == op.addr for e in self.checkpoint.elisions):
            # Non-silent store to an elided lock: elision assumption broken.
            self.processor.resource_fallback("non-silent-pair")
            return False
        return False

    # ------------------------------------------------------------------
    # Outcome notifications (from the processor)
    # ------------------------------------------------------------------
    def on_commit(self) -> None:
        self.predictor.elision_succeeded(self.root_pc)
        if self.tlr:
            self.authority.commit()
            self.stats.timestamp_updates += 1
        self.checkpoint = None
        self.active = False
        self._attempts = 0
        self.stats.elisions_committed += 1

    def on_misspeculation(self, reason: str, resource: bool) -> int:
        """Record a failed attempt; returns the restart depth.

        Decides whether the *next* attempt should skip elision (acquire
        the lock for real): always after resource limits; after the retry
        threshold under plain SLE; never for TLR data conflicts.
        """
        if self.checkpoint is None:
            return 0
        depth = self.checkpoint.root_depth
        self.predictor.elision_failed(self.root_pc, resource)
        if resource:
            self._suppress_next = True
            self.stats.lock_fallbacks += 1
            if self.tlr:
                self.authority.abandon()
            self._attempts = 0
        elif not self.tlr:
            if self._attempts >= self.config.spec.sle_restart_threshold:
                self._suppress_next = True
                self.stats.lock_fallbacks += 1
                self._attempts = 0
        elif self.processor.controller.policy.should_fallback(
                self._attempts):
            # A contention policy without a progress guarantee (e.g.
            # requester-wins) bounds its losses: after K failed attempts
            # the lock is acquired for real.  The paper's timestamp
            # policies never take this branch -- TLR data conflicts keep
            # the timestamp and retry without limit.
            self._suppress_next = True
            self.stats.lock_fallbacks += 1
            self.authority.abandon()
            self._attempts = 0
        self.checkpoint = None
        self.active = False
        return depth

    def observe_conflict_ts(self, ts) -> None:
        """Feed conflicting-request clocks into the local clock rules."""
        if self.tlr:
            self.authority.observe_conflict(ts)

    def lock_lines(self) -> set[int]:
        """Lines of currently elided locks (watched for writes)."""
        if self.checkpoint is None:
            return set()
        return {line_of(e.lock_addr) for e in self.checkpoint.elisions}
