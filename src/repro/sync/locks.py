"""test&test&set lock built on LL/SC.

This is the lock the paper's BASE, SLE and TLR configurations all run
(same executable): spin reading until the lock looks free, then attempt
an LL/SC acquire.  The release is a plain store of the free value -- the
second half of the silent store pair SLE elides.

Spinning is modeled with ``Watch``: a test&test&set spinner holds a
shared copy of the lock line and learns of a release only through an
invalidation, so parking until the invalidation *is* the spin (and its
duration is charged as lock stall).  On wakeup all spinners race to the
line -- recreating the invalidation/refill storm that makes BASE degrade
under contention in Figures 8-10.
"""

from __future__ import annotations

from typing import Generator

from repro.cpu import isa

FREE = 0
HELD = 1


class TestAndTestAndSetLock:
    """The shared-executable lock API for BASE/SLE/TLR."""

    name = "test&test&set"

    def acquire(self, env, lock_addr: int, pc: str) -> Generator:
        while True:
            value = yield isa.LoadLinked(lock_addr, pc=f"{pc}.ll")
            if value == FREE:
                ok = yield isa.StoreConditional(lock_addr, HELD,
                                                pc=f"{pc}.sc")
                if ok:
                    return
                # SC failed (link lost to an interfering access): brief
                # backoff, then retry.
                yield isa.Compute(4)
            else:
                yield isa.Watch(lock_addr, expect=value)

    def release(self, env, lock_addr: int, pc: str) -> Generator:
        yield isa.Write(lock_addr, FREE, pc=f"{pc}.rel", is_lock=True)
