"""Software lock algorithms run through the simulated memory system."""

from repro.sync.locks import FREE, HELD, TestAndTestAndSetLock
from repro.sync.mcs import McsLock, QnodeAllocator

__all__ = ["TestAndTestAndSetLock", "McsLock", "QnodeAllocator",
           "FREE", "HELD"]
