"""MCS queue lock (Mellor-Crummey & Scott).

The paper's fourth configuration: a scalable software queue lock.  Each
contender appends its queue node to the lock's tail with an atomic swap
and spins *locally* on its own node's flag, so under contention the lock
hand-off costs one remote write per waiter instead of a broadcast storm
-- which is why MCS scales in Figures 8-10 -- but every acquire/release
pays the software overhead (swap, pointer writes, CAS on release) even
when the lock is uncontended, which is why MCS loses to BASE on mp3d and
water-nsq.

Queue-node addresses double as pointer values, so each CPU gets one node
per lock, allocated lazily from the workload's address space on fresh
cache lines (no false sharing, matching the paper's padded data
structures).  All MCS protocol accesses are tagged ``is_lock`` for the
Figure 11 breakdown.
"""

from __future__ import annotations

from typing import Generator

from repro.cpu import isa

NULL = 0

_NEXT = 0    # qnode.next  : word offset 0
_LOCKED = 1  # qnode.locked: word offset 1


class QnodeAllocator:
    """Lazily hands out one padded qnode per (cpu, lock)."""

    def __init__(self, alloc_line):
        # ``alloc_line`` returns the first word address of a fresh,
        # exclusively-owned cache line.
        self._alloc_line = alloc_line
        self._nodes: dict[tuple[int, int], int] = {}

    def qnode(self, cpu_id: int, lock_addr: int) -> int:
        key = (cpu_id, lock_addr)
        node = self._nodes.get(key)
        if node is None:
            node = self._alloc_line()
            self._nodes[key] = node
        return node


class McsLock:
    """The MCS lock API (drop-in for the lock_api slot of ThreadEnv)."""

    name = "MCS"

    def __init__(self, allocator: QnodeAllocator):
        self._allocator = allocator

    def acquire(self, env, lock_addr: int, pc: str) -> Generator:
        node = self._allocator.qnode(env.cpu_id, lock_addr)
        yield isa.Write(node + _NEXT, NULL, pc=f"{pc}.mcs.initnext",
                        is_lock=True)
        pred = yield isa.AtomicSwap(lock_addr, node, pc=f"{pc}.mcs.swap",
                                    is_lock=True)
        if pred != NULL:
            yield isa.Write(node + _LOCKED, 1, pc=f"{pc}.mcs.setlocked",
                            is_lock=True)
            yield isa.Write(pred + _NEXT, node, pc=f"{pc}.mcs.link",
                            is_lock=True)
            while True:
                locked = yield isa.Read(node + _LOCKED,
                                        pc=f"{pc}.mcs.spin", is_lock=True)
                if not locked:
                    break
                yield isa.Watch(node + _LOCKED, expect=locked)

    def release(self, env, lock_addr: int, pc: str) -> Generator:
        node = self._allocator.qnode(env.cpu_id, lock_addr)
        succ = yield isa.Read(node + _NEXT, pc=f"{pc}.mcs.readnext",
                              is_lock=True)
        if succ == NULL:
            old = yield isa.AtomicCas(lock_addr, expect=node, new=NULL,
                                      pc=f"{pc}.mcs.cas", is_lock=True)
            if old == node:
                return  # no successor: lock handed back to free
            # A successor is mid-enqueue: wait for it to link itself.
            while True:
                succ = yield isa.Read(node + _NEXT, pc=f"{pc}.mcs.waitlink",
                                      is_lock=True)
                if succ != NULL:
                    break
                yield isa.Watch(node + _NEXT, expect=NULL)
        yield isa.Write(succ + _LOCKED, 0, pc=f"{pc}.mcs.grant",
                        is_lock=True)
