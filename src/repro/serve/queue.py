"""Job lifecycle: queueing, in-flight coalescing, worker threads.

A :class:`JobQueue` owns a bounded set of worker *threads* (each
running one job at a time through :func:`repro.harness.jobs.submit`)
and, when engine parallelism is requested, one persistent
:class:`~repro.harness.parallel.WorkerPool` of *processes* shared by
every job -- the pool survives across jobs, so the service never pays
fork/teardown per submission.

Dedup happens at two distinct moments:

* **in flight** -- ``submit()`` under the queue lock: a second
  submission whose fingerprint is already queued or running returns
  the *same* :class:`Job` (coalesced; one execution, many watchers);
* **completed** -- inside :func:`repro.harness.jobs.submit`: a job
  whose fingerprint completed earlier (any process, any transport)
  replays its stored :class:`~repro.harness.jobs.JobResult` from the
  result cache without simulating anything.
"""

from __future__ import annotations

import itertools
import queue as queue_module
import threading
import time
from typing import Iterator, Optional

from repro.harness.cache import resolve_cache
from repro.harness.jobs import JobResult, submit
from repro.harness.parallel import WorkerPool
from repro.harness.spec import JobSpec
from repro.obs.metrics import MetricsRegistry

#: States a job can be observed in; the last two are terminal.
JOB_STATES = ("queued", "running", "done", "failed")
TERMINAL_STATES = ("done", "failed")


class Job:
    """One submitted job and everything observable about it."""

    def __init__(self, job_id: str, spec: JobSpec, fingerprint: str):
        self.id = job_id
        self.spec = spec
        self.fingerprint = fingerprint
        self.state = "queued"
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.progress = {"done": 0, "total": 0}
        self.result: Optional[JobResult] = None
        self.error: Optional[str] = None
        #: Event log for SSE subscribers (and late joiners, who replay
        #: it from the start).
        self.events: list[dict] = []
        #: How many submissions this job absorbed beyond the first.
        self.coalesced = 0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self, include_result: bool = True) -> dict:
        data = {
            "id": self.id,
            "kind": self.spec.kind,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "progress": dict(self.progress),
            "coalesced": self.coalesced,
            "error": self.error,
        }
        if include_result and self.result is not None:
            data["result"] = self.result.to_dict()
        return data


class JobQueue:
    """Priority job queue with coalescing, worker threads and metrics.

    Jobs drain in :attr:`~repro.harness.spec.JobSpec.priority` order
    (higher first), FIFO among equal priorities -- the default priority
    is 0, so a service that never sets it behaves exactly like the old
    FIFO queue.  Priority orders *dispatch only*: it is not part of the
    job fingerprint, so a high- and a low-priority submission of the
    same spec still coalesce into one execution.

    ``workers`` threads drain the queue concurrently (several *jobs* in
    flight); ``jobs`` is the engine parallelism *within* one job --
    when > 1 a persistent :class:`WorkerPool` of that many processes is
    created and shared by all workers.  ``start=False`` leaves the
    workers unstarted so tests can assert queue state (e.g. coalescing)
    before anything executes; call :meth:`start` to begin draining.
    """

    def __init__(self, *, workers: int = 2, jobs: int = 1,
                 cache=True, timeout: Optional[float] = None,
                 retries: Optional[int] = None, start: bool = True):
        self.workers = max(1, workers)
        self.jobs = max(1, jobs or 1)
        self.cache = resolve_cache(cache)
        self.timeout = timeout
        self.retries = retries
        self.pool = WorkerPool(processes=self.jobs) if self.jobs > 1 else None
        self.metrics = MetricsRegistry()
        self._cond = threading.Condition()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, str] = {}  # fingerprint -> job id
        # (-priority, seq, job_id): heap pops highest priority first,
        # FIFO (by submission sequence) among equals.  The stop
        # sentinel's job_id is None, which plain tuples could compare
        # against a real entry's str id -- the seq tiebreak makes the
        # third element unreachable for ordering.
        self._pending: queue_module.PriorityQueue = \
            queue_module.PriorityQueue()
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self._stopped = False
        if start:
            self.start()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Start the worker threads (idempotent)."""
        if self._threads:
            return
        for i in range(self.workers):
            thread = threading.Thread(target=self._worker,
                                      name=f"serve-worker-{i}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Drain-free shutdown: stop workers after their current job,
        close the process pool, persist cache hit/miss counters."""
        with self._cond:
            if self._stopped:
                return
            self._stopped = True
        # Sentinel sorts after every real job, so pending work drains
        # before workers see the stop signal.
        self._pending.put((float("inf"), next(self._seq), None))
        for thread in self._threads:
            thread.join(timeout=30)
        if self.pool is not None:
            self.pool.close()
        if self.cache is not None:
            self.cache.persist_counters()

    # -- submission -----------------------------------------------------
    def submit(self, spec: JobSpec) -> tuple[Job, bool]:
        """Enqueue ``spec``; returns ``(job, coalesced)``.

        ``coalesced`` is true when an identical job (same fingerprint)
        was already queued or running, in which case the existing job is
        returned and nothing new is enqueued.
        """
        fingerprint = spec.fingerprint()
        with self._cond:
            self.metrics.counter("serve.jobs.submitted").inc()
            existing = self._inflight.get(fingerprint)
            if existing is not None:
                job = self._jobs[existing]
                job.coalesced += 1
                self.metrics.counter("serve.jobs.coalesced").inc()
                return job, True
            job = Job(f"j{next(self._ids):06d}", spec, fingerprint)
            self._jobs[job.id] = job
            self._inflight[fingerprint] = job.id
            self._emit(job, "queued", {"id": job.id, "kind": spec.kind})
            item = (-spec.priority, next(self._seq), job.id)
        self._pending.put(item)
        return job, False

    # -- observation ----------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._cond:
            return self._jobs.get(job_id)

    def list_jobs(self) -> list[Job]:
        with self._cond:
            return list(self._jobs.values())

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Optional[Job]:
        """Block until ``job_id`` reaches a terminal state."""
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            self._cond.wait_for(lambda: job.terminal, timeout=timeout)
            return job

    def events(self, job_id: str) -> Iterator[dict]:
        """Yield ``job_id``'s events from the beginning, live until the
        job reaches a terminal state (SSE backing iterator)."""
        index = 0
        while True:
            with self._cond:
                job = self._jobs.get(job_id)
                if job is None:
                    return
                self._cond.wait_for(
                    lambda: len(job.events) > index or job.terminal,
                    timeout=30)
                fresh = job.events[index:]
                index = len(job.events)
                finished = job.terminal and not fresh
            yield from fresh
            if finished:
                return
            if not fresh:  # timed out idle; re-check for liveness
                continue

    # -- internals ------------------------------------------------------
    def _emit(self, job: Job, event: str, data: dict) -> None:
        """Append an event and wake watchers.  Caller holds the lock."""
        job.events.append({"event": event, "data": data})
        self._cond.notify_all()

    def _worker(self) -> None:
        while True:
            item = self._pending.get()
            job_id = item[2]
            if job_id is None:
                self._pending.put(item)  # wake the next worker too
                return
            self._run_job(self._jobs[job_id])

    def _run_job(self, job: Job) -> None:
        with self._cond:
            job.state = "running"
            job.started_at = time.time()
            self._emit(job, "running", {"id": job.id})

        def tap(done: int, total: int, outcome) -> None:
            with self._cond:
                job.progress = {"done": done, "total": total}
                self.metrics.counter("serve.cells.completed").inc()
                self._emit(job, "progress", {"done": done, "total": total})

        try:
            result = submit(job.spec, jobs=self.jobs, timeout=self.timeout,
                            cache=self.cache, retries=self.retries,
                            pool=self.pool, progress=tap)
        except Exception as exc:  # a failed job must not kill its worker
            with self._cond:
                job.state = "failed"
                job.finished_at = time.time()
                job.error = f"{type(exc).__name__}: {exc}"
                self._inflight.pop(job.fingerprint, None)
                self.metrics.counter("serve.jobs.failed").inc()
                self._emit(job, "failed", {"error": job.error})
            return
        with self._cond:
            job.result = result
            job.state = "done"
            job.finished_at = time.time()
            self._inflight.pop(job.fingerprint, None)
            self.metrics.counter("serve.jobs.completed").inc()
            if result.cached:
                self.metrics.counter("serve.jobs.replayed").inc()
            simulated = (result.telemetry or {}).get("simulated", 0)
            if simulated:
                self.metrics.counter("serve.cells.simulated").inc(simulated)
            self._emit(job, "done",
                       {"id": job.id, "cached": result.cached,
                        "elapsed": result.elapsed})
