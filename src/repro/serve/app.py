"""Service assembly: queue + HTTP server + optional regeneration.

:func:`build_server` wires a :class:`~repro.serve.queue.JobQueue` to a
:class:`~repro.serve.http.JobServer` without starting anything (tests
bind port 0 and drive it in-process); :func:`serve` is the blocking
``repro serve`` entry point.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.serve.http import JobServer
from repro.serve.queue import JobQueue


def build_server(host: str = "127.0.0.1", port: int = 0, *,
                 workers: int = 2, jobs: int = 1, cache=True,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 start: bool = True,
                 verbose: bool = False) -> JobServer:
    """A bound (but not yet serving) server plus its queue."""
    queue = JobQueue(workers=workers, jobs=jobs, cache=cache,
                     timeout=timeout, retries=retries, start=start)
    return JobServer((host, port), queue, verbose=verbose)


def serve(host: str = "127.0.0.1", port: int = 8023, *,
          workers: int = 2, jobs: int = 1, cache=True,
          timeout: Optional[float] = None,
          retries: Optional[int] = None,
          regen: bool = False,
          verbose: bool = False,
          stream=None) -> None:
    """Run the service until interrupted.

    With ``regen``, first compare the committed ``BENCH_*.json``
    artifacts' cells against the result cache and re-simulate only the
    stale ones (priming the cache the service then serves from).
    """
    out = stream or sys.stdout
    if regen:
        from repro.harness import invalidate
        plans = invalidate.plan(cache=cache)
        print(invalidate.render_plan(plans), file=out)
        summary = invalidate.regenerate(plans, jobs=jobs, cache=cache,
                                        timeout=timeout, retries=retries)
        print(f"regenerated {summary['simulated']} stale cell(s) "
              f"in {summary['wall_seconds']:.1f}s", file=out)
    server = build_server(host, port, workers=workers, jobs=jobs,
                          cache=cache, timeout=timeout, retries=retries,
                          verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: listening on http://{bound_host}:{bound_port} "
          f"({workers} worker thread(s), engine jobs={jobs}, "
          f"cache={'on' if server.queue.cache is not None else 'off'})",
          file=out)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down", file=out)
    finally:
        server.server_close()
        server.queue.stop()
