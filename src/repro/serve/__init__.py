"""The ``repro serve`` job-queue service.

An always-on front end over the same :func:`repro.harness.jobs.submit`
API the CLI uses: HTTP clients POST :class:`~repro.harness.spec.JobSpec`
envelopes to ``/jobs``, poll ``/jobs/<id>`` or stream per-cell progress
from ``/jobs/<id>/events`` (SSE), and scrape ``/metrics``
(OpenMetrics).  Work is sharded across a persistent
:class:`~repro.harness.parallel.WorkerPool`; identical jobs are deduped
both in flight (one execution, many watchers) and across completions
(fingerprint-keyed replay from the result cache).
"""

from repro.serve.app import build_server, serve
from repro.serve.queue import Job, JobQueue

__all__ = ["Job", "JobQueue", "build_server", "serve"]
