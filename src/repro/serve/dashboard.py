"""The ``/dashboard`` page: live job metrics and the conflict matrix.

One self-contained HTML document (no external assets, stdlib-served by
:mod:`repro.serve.http`) that drives the service's existing endpoints
from vanilla JavaScript:

* ``/jobs`` polled for the job table;
* ``/jobs/<id>/events`` subscribed as Server-Sent Events for the
  selected job's live event feed (state changes, sweep progress);
* ``/jobs/<id>`` fetched on completion to render the run's per-lock
  contention profile -- totals, the critical-path lock table and the
  who-aborts-whom conflict matrix from ``metrics.profile``
  (:mod:`repro.obs.profile`);
* ``/metrics`` polled for the service-level OpenMetrics families.

The page renders whatever profile object it finds first in the job's
result payload (an object carrying both ``conflicts`` and ``totals``),
so single runs, verify jobs and sweep cells all work without
kind-specific plumbing.
"""

from __future__ import annotations

DASHBOARD_CONTENT_TYPE = "text/html; charset=utf-8"

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro serve dashboard</title>
<style>
  body { font: 13px/1.5 system-ui, sans-serif; margin: 1.5em;
         color: #1b1b1b; background: #fafafa; }
  h1 { font-size: 1.25em; } h2 { font-size: 1.05em; margin-top: 1.4em; }
  table { border-collapse: collapse; margin: .5em 0; }
  th, td { border: 1px solid #ccc; padding: .25em .6em; text-align: right; }
  th { background: #efefef; }
  td.name, th.name { text-align: left; }
  tr.job { cursor: pointer; }
  tr.job.selected { outline: 2px solid #4a7; }
  td.heat { color: #fff; min-width: 2.2em; }
  #events { max-height: 14em; overflow-y: auto; background: #111;
            color: #9e9; padding: .6em; font: 12px/1.45 monospace;
            white-space: pre-wrap; }
  #svc { font: 12px monospace; white-space: pre-wrap; background: #eee;
         padding: .6em; max-height: 10em; overflow-y: auto; }
  .state-done { color: #2a7; } .state-failed { color: #c33; }
  .state-running { color: #b80; }
  .muted { color: #888; }
</style>
</head>
<body>
<h1>repro serve dashboard</h1>
<p class="muted">jobs refresh every 2s; select a job to stream its
events and, once done, its per-lock contention profile.</p>

<h2>jobs</h2>
<table id="jobs"><thead><tr>
  <th class="name">id</th><th>kind</th><th>state</th><th>progress</th>
  <th>coalesced</th></tr></thead><tbody></tbody></table>

<h2>events <span id="evtarget" class="muted"></span></h2>
<div id="events">(select a job)</div>

<h2>contention profile</h2>
<div id="profile"><span class="muted">(finishes with the selected
job, when its result carries metrics.profile)</span></div>

<h2>service metrics</h2>
<div id="svc">(loading)</div>

<script>
"use strict";
let selected = null, source = null;

function esc(s) { const d = document.createElement("span");
  d.textContent = String(s); return d.innerHTML; }

async function refreshJobs() {
  const res = await fetch("/jobs");
  const data = await res.json();
  const body = document.querySelector("#jobs tbody");
  body.innerHTML = "";
  for (const job of data.jobs) {
    const tr = document.createElement("tr");
    tr.className = "job" + (job.id === selected ? " selected" : "");
    const prog = job.progress && job.progress.total
      ? job.progress.done + "/" + job.progress.total : "";
    tr.innerHTML = "<td class=name>" + esc(job.id) + "</td><td>"
      + esc(job.kind) + "</td><td class=state-" + esc(job.state) + ">"
      + esc(job.state) + "</td><td>" + esc(prog) + "</td><td>"
      + esc(job.coalesced) + "</td>";
    tr.onclick = () => select(job.id);
    body.appendChild(tr);
    if (selected === null) select(job.id);
  }
}

function select(id) {
  if (id === selected) return;
  selected = id;
  document.getElementById("evtarget").textContent = "(" + id + ")";
  document.getElementById("events").textContent = "";
  if (source) source.close();
  source = new EventSource("/jobs/" + id + "/events");
  const log = document.getElementById("events");
  source.onmessage = (e) => append(log, e.data);
  for (const kind of ["state", "progress", "done", "failed"]) {
    source.addEventListener(kind, (e) => {
      append(log, kind + " " + e.data);
      if (kind === "done" || kind === "failed") loadProfile(id);
    });
  }
  loadProfile(id);
  refreshJobs();
}

function append(log, text) {
  log.textContent += text + "\\n";
  log.scrollTop = log.scrollHeight;
}

function findProfile(node) {
  if (node === null || typeof node !== "object") return null;
  if (node.conflicts !== undefined && node.totals !== undefined)
    return node;
  for (const key of Object.keys(node)) {
    const hit = findProfile(node[key]);
    if (hit) return hit;
  }
  return null;
}

async function loadProfile(id) {
  const res = await fetch("/jobs/" + id);
  if (!res.ok) return;
  const job = await res.json();
  const profile = findProfile(job.result || null);
  const target = document.getElementById("profile");
  if (!profile) {
    target.innerHTML = "<span class=muted>(no profile in this job's "
      + "result yet)</span>";
    return;
  }
  const t = profile.totals || {};
  let html = "<p>" + esc(t.attempts || 0) + " attempts, "
    + esc(t.commits || 0) + " commits (rate "
    + esc((t.commit_rate || 0).toFixed ? t.commit_rate.toFixed(3)
          : t.commit_rate) + "), " + esc(t.aborts || 0)
    + " aborts costing " + esc(t.cycles_lost || 0) + " cycles, "
    + esc(t.deferral_cycles || 0) + " deferral wait cycles</p>";
  html += "<table><thead><tr><th class=name>lock</th><th>attempts</th>"
    + "<th>commits</th><th>aborts</th><th>cycles lost</th>"
    + "<th>defer wait</th></tr></thead><tbody>";
  const locks = Object.entries(profile.locks || {}).sort((a, b) =>
    (b[1].cycles_contended || 0) - (a[1].cycles_contended || 0));
  for (const [lock, s] of locks) {
    html += "<tr><td class=name>" + esc(lock) + "</td><td>"
      + esc(s.attempts) + "</td><td>" + esc(s.commits) + "</td><td>"
      + esc(s.aborts) + "</td><td>" + esc(s.cycles_lost) + "</td><td>"
      + esc(s.deferral_cycles) + "</td></tr>";
  }
  html += "</tbody></table>";
  html += renderMatrix(profile.conflicts || {});
  target.innerHTML = html;
}

function renderMatrix(conflicts) {
  const victims = Object.keys(conflicts).sort((a, b) => a - b);
  if (!victims.length)
    return "<p class=muted>(no aborts: empty conflict matrix)</p>";
  const aborters = [...new Set(victims.flatMap(
    (v) => Object.keys(conflicts[v])))].sort((a, b) => a - b);
  let max = 1;
  for (const v of victims)
    for (const a of aborters)
      max = Math.max(max, conflicts[v][a] || 0);
  let html = "<h3>who aborts whom</h3><table><thead><tr>"
    + "<th class=name>victim \\\\ aborter</th>";
  for (const a of aborters)
    html += "<th>" + (a === "-1" ? "?" : "cpu " + esc(a)) + "</th>";
  html += "</tr></thead><tbody>";
  for (const v of victims) {
    html += "<tr><td class=name>cpu " + esc(v) + "</td>";
    for (const a of aborters) {
      const n = conflicts[v][a] || 0;
      const alpha = n ? 0.25 + 0.75 * (n / max) : 0;
      html += "<td class=heat style=\\"background: rgba(180,40,40,"
        + alpha.toFixed(2) + ")" + (n ? "" : "; color:#888")
        + "\\">" + n + "</td>";
    }
    html += "</tr>";
  }
  return html + "</tbody></table>";
}

async function refreshServiceMetrics() {
  const res = await fetch("/metrics");
  document.getElementById("svc").textContent = await res.text();
}

refreshJobs(); refreshServiceMetrics();
setInterval(refreshJobs, 2000);
setInterval(refreshServiceMetrics, 5000);
</script>
</body>
</html>
"""
