"""HTTP transport for the job queue (stdlib ``http.server`` only).

Endpoints:

* ``POST /jobs`` -- body is a :class:`~repro.harness.spec.JobSpec`
  envelope (``{"kind": ..., "params": {...}}``); responds ``202`` with
  the job id, fingerprint and whether the submission coalesced onto an
  already-in-flight identical job.
* ``GET /jobs`` -- all jobs, summaries only.
* ``GET /jobs/<id>`` -- one job, including its result when done.
* ``GET /jobs/<id>/events`` -- Server-Sent Events: the job's event log
  from the beginning, streamed live until it finishes.
* ``GET /jobs/<id>/artifacts`` -- names of the job's on-disk artifacts
  (e.g. auto-captured ``.rlog`` record logs from a verify failure).
* ``GET /jobs/<id>/artifacts/<name>`` -- download one artifact as
  ``application/octet-stream``.
* ``GET /metrics`` -- service counters in OpenMetrics text format.
* ``GET /dashboard`` -- the live HTML dashboard
  (:mod:`repro.serve.dashboard`): job table, SSE-fed event stream and
  the finished job's per-lock contention profile / conflict matrix.
* ``GET /healthz`` -- liveness.

The server is a ``ThreadingHTTPServer``: every request (including
long-lived SSE streams) gets its own thread, while execution stays in
the queue's worker threads -- a slow watcher can never stall a job.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.harness.spec import FINGERPRINT_VERSION, JobSpec, RESULT_SCHEMA
from repro.serve.queue import JobQueue

OPENMETRICS_CONTENT_TYPE = ("application/openmetrics-text; "
                            "version=1.0.0; charset=utf-8")


class JobServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`JobQueue`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, queue: JobQueue, verbose: bool = False):
        super().__init__(address, JobHandler)
        self.queue = queue
        self.verbose = verbose


class JobHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"

    @property
    def queue(self) -> JobQueue:
        return self.server.queue

    def log_message(self, fmt, *args):  # quiet by default
        if self.server.verbose:
            super().log_message(fmt, *args)

    # -- helpers --------------------------------------------------------
    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _not_found(self) -> None:
        self._send_json(404, {"error": f"no such path {self.path!r}"})

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/healthz":
            self._send_json(200, {"ok": True,
                                  "jobs": len(self.queue.list_jobs())})
        elif path == "/metrics":
            text = self.queue.metrics.to_openmetrics(meta={
                "service": "repro-serve",
                "fingerprint_version": FINGERPRINT_VERSION,
                "result_schema": RESULT_SCHEMA,
            })
            self._send_text(200, text, OPENMETRICS_CONTENT_TYPE)
        elif path == "/dashboard":
            from repro.serve.dashboard import (DASHBOARD_CONTENT_TYPE,
                                               DASHBOARD_HTML)
            self._send_text(200, DASHBOARD_HTML, DASHBOARD_CONTENT_TYPE)
        elif path == "/jobs":
            self._send_json(200, {"jobs": [
                job.to_dict(include_result=False)
                for job in self.queue.list_jobs()]})
        elif path.startswith("/jobs/") and path.endswith("/events"):
            self._stream_events(path[len("/jobs/"):-len("/events")])
        elif path.startswith("/jobs/") and "/artifacts" in path:
            rest = path[len("/jobs/"):]
            job_id, _, name = rest.partition("/artifacts")
            self._send_artifact(job_id, name.lstrip("/"))
        elif path.startswith("/jobs/"):
            job = self.queue.get(path[len("/jobs/"):])
            if job is None:
                self._not_found()
            else:
                self._send_json(200, job.to_dict())
        else:
            self._not_found()

    def do_POST(self) -> None:
        if self.path.split("?", 1)[0].rstrip("/") != "/jobs":
            self._not_found()
            return
        length = int(self.headers.get("Content-Length") or 0)
        try:
            spec = JobSpec.from_dict(json.loads(
                self.rfile.read(length).decode("utf-8")))
        except (json.JSONDecodeError, KeyError, TypeError,
                ValueError) as exc:
            self._send_json(400, {"error": f"bad job spec: {exc}"})
            return
        job, coalesced = self.queue.submit(spec)
        self._send_json(202, {"id": job.id,
                              "fingerprint": job.fingerprint,
                              "state": job.state,
                              "coalesced": coalesced})

    def _send_artifact(self, job_id: str, name: str) -> None:
        job = self.queue.get(job_id)
        if job is None or job.result is None:
            self._not_found()
            return
        artifacts = (job.result.extra or {}).get("artifacts") or {}
        if not name:
            self._send_json(200, {"artifacts": sorted(artifacts)})
            return
        # Names are an allow-list from the registry -- never a path
        # taken from the URL -- so traversal is structurally impossible.
        path = artifacts.get(name)
        if path is None:
            self._not_found()
            return
        try:
            with open(path, "rb") as fh:
                body = fh.read()
        except OSError:
            self._send_json(410, {"error": f"artifact {name!r} vanished"})
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Disposition",
                         f'attachment; filename="{name}"')
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _stream_events(self, job_id: str) -> None:
        if self.queue.get(job_id) is None:
            self._not_found()
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        try:
            for event in self.queue.events(job_id):
                chunk = (f"event: {event['event']}\n"
                         f"data: {json.dumps(event['data'])}\n\n")
                self.wfile.write(chunk.encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # watcher went away; the job keeps running
