"""Speculation checkpoints and the elision stack.

A real SLE/TLR core checkpoints its register state when it elides a lock
and restores it on misspeculation.  In this model the register state is
the thread coroutine's local frame, which the runtime restores by
re-invoking the critical-section body; what remains to track in hardware
is the *elision stack*: which lock addresses were elided, the free value
each store pair must restore, and bookkeeping about the current attempt
(needed for the SLE retry threshold and the TLR timestamp reuse).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.coherence.messages import Timestamp


class RestartSignal(Exception):
    """Thrown into the thread coroutine on misspeculation.

    ``depth`` identifies the critical-section nesting level that is the
    speculation root; only that level's restart loop catches the signal,
    so a misspeculation in a nested section restarts the whole
    transaction, as the hardware would.
    """

    def __init__(self, depth: int, reason: str = ""):
        super().__init__(f"restart to depth {depth}: {reason}")
        self.depth = depth
        self.reason = reason


@dataclass
class ElisionRecord:
    """One elided lock (one silent store pair in flight)."""

    lock_addr: int
    free_value: int     # value the matching release store must write back
    held_value: int     # value the elided acquire store would have written
    pc: str
    depth: int          # critical-section nesting depth at elision time


@dataclass
class SpeculationCheckpoint:
    """State of the current speculative episode."""

    start_time: int
    ts: Optional[Timestamp]
    root_depth: int
    elisions: list[ElisionRecord] = field(default_factory=list)
    attempts: int = 1

    def push(self, record: ElisionRecord) -> None:
        self.elisions.append(record)

    def pop_matching(self, lock_addr: int, value: int) -> Optional[ElisionRecord]:
        """Match a store against the innermost elision (store pairs nest)."""
        if self.elisions and self.elisions[-1].lock_addr == lock_addr \
                and self.elisions[-1].free_value == value:
            return self.elisions.pop()
        return None

    @property
    def committed(self) -> bool:
        return not self.elisions

    @property
    def nest_level(self) -> int:
        return len(self.elisions)
