"""PC-indexed predictors.

Two predictors from the paper:

* :class:`RmwPredictor` -- Section 3.1.2's instruction-based predictor
  that collapses read-modify-write sequences inside critical sections
  into a single exclusive request: a load whose PC the predictor trusts
  fetches its line exclusive up front, avoiding the later upgrade (whose
  external invalidations cannot be deferred and would force
  misspeculation).  The paper uses a 128-entry table and enables it for
  *all* configurations, making the BASE case highly optimized.

* :class:`StorePairPredictor` -- SLE's silent store-pair predictor (64
  entries in Table 2): decides whether a store-conditional at a given PC
  should be elided as the first half of an acquire/release pair.  Under
  plain SLE repeated data conflicts lower confidence so the lock is
  eventually taken for real; under TLR conflicts are handled by
  timestamps, so only *resource* failures (buffer overflow, capacity)
  reduce confidence.

Both tables are finite and LRU-replaced, so pathological PC working sets
degrade gracefully rather than growing without bound.
"""

from __future__ import annotations

from collections import OrderedDict


class _SaturatingTable:
    """An LRU-bounded table of saturating counters indexed by PC."""

    def __init__(self, entries: int, ceiling: int, initial: int):
        self.entries = entries
        self.ceiling = ceiling
        self.initial = initial
        self._table: "OrderedDict[str, int]" = OrderedDict()

    def _touch(self, pc: str) -> int:
        if pc in self._table:
            self._table.move_to_end(pc)
            return self._table[pc]
        if len(self._table) >= self.entries:
            self._table.popitem(last=False)
        self._table[pc] = self.initial
        return self.initial

    def value(self, pc: str) -> int:
        return self._touch(pc)

    def bump(self, pc: str, delta: int) -> None:
        current = self._touch(pc)
        self._table[pc] = max(0, min(self.ceiling, current + delta))

    def known(self, pc: str) -> bool:
        return pc in self._table

    def __len__(self) -> int:
        return len(self._table)


class RmwPredictor:
    """Predicts loads (by PC) that will be followed by a store to the
    same address within the critical section."""

    def __init__(self, entries: int = 128, enabled: bool = True):
        self.enabled = enabled
        self._table = _SaturatingTable(entries, ceiling=3, initial=0)
        self.hits = 0
        self.trainings = 0

    def predict_exclusive(self, pc: str) -> bool:
        """Should this load fetch its line exclusive?"""
        if not self.enabled or not pc:
            return False
        if self._table.value(pc) >= 2:
            self.hits += 1
            return True
        return False

    def train_rmw(self, pc: str) -> None:
        """A store followed this load's address within the section."""
        if self.enabled and pc:
            self.trainings += 1
            self._table.bump(pc, +2)

    def train_not_rmw(self, pc: str) -> None:
        """The section ended without a store to the load's address."""
        if self.enabled and pc and self._table.known(pc):
            self._table.bump(pc, -1)

    @property
    def live_entries(self) -> int:
        return len(self._table)


class StorePairPredictor:
    """Decides whether to elide a candidate lock-acquire store."""

    def __init__(self, entries: int = 64, tlr: bool = False):
        self.tlr = tlr
        self._table = _SaturatingTable(entries, ceiling=3, initial=3)

    def should_elide(self, pc: str) -> bool:
        return self._table.value(pc) >= 2

    def elision_succeeded(self, pc: str) -> None:
        self._table.bump(pc, +1)

    def elision_failed(self, pc: str, resource: bool) -> None:
        """Lower confidence on failure.

        Under TLR only resource-limit failures count against a PC; data
        conflicts are the normal, timestamp-resolved case and must not
        push the hardware back toward lock acquisition.
        """
        if resource or not self.tlr:
            self._table.bump(pc, -2)
