"""Architectural operations.

Thread programs (the workloads) are Python generator coroutines that yield
these operation records to their processor, which executes each with the
timing and coherence behaviour of the modeled machine and sends the result
back into the coroutine.  The vocabulary mirrors what the paper's target
machine offers: plain loads/stores, load-linked/store-conditional (the
synchronization primitive of Table 2), and the atomic swap/compare-and-swap
that MCS locks are usually built from on real SPARC/MIPS systems.

``pc`` is a stable label standing in for the instruction address; the
PC-indexed predictors (read-modify-write collapsing, silent store-pair
elision) key on it.  ``is_lock`` tags accesses to lock variables for the
paper's Figure 11 lock/non-lock stall breakdown.

Addresses are word addresses (8-byte words); ``line_of`` maps a word
address to its 64-byte cache line.
"""

from __future__ import annotations

from dataclasses import dataclass

WORD_BYTES = 8
LINE_BYTES = 64
WORDS_PER_LINE = LINE_BYTES // WORD_BYTES

# line_of runs on every memory operation; a shift beats floor division
# and is identical for all ints when the divisor is a power of two.
assert WORDS_PER_LINE & (WORDS_PER_LINE - 1) == 0
_LINE_SHIFT = WORDS_PER_LINE.bit_length() - 1


def line_of(addr: int) -> int:
    """Cache-line index of a word address."""
    return addr >> _LINE_SHIFT


class Op:
    """Base class for architectural operations (for isinstance checks)."""

    __slots__ = ()


@dataclass
class Read(Op):
    """Load a word; the yield's result is the value."""

    addr: int
    pc: str = ""
    is_lock: bool = False


@dataclass
class Write(Op):
    """Store a word."""

    addr: int
    value: int
    pc: str = ""
    is_lock: bool = False


@dataclass
class Compute(Op):
    """Busy the core for a number of cycles (ALU work, local control)."""

    cycles: int


@dataclass
class LoadLinked(Op):
    """LL: load a word and arm the link register on its line."""

    addr: int
    pc: str = ""
    is_lock: bool = True


@dataclass
class StoreConditional(Op):
    """SC: store iff the link is still armed; result is True on success.

    An SC whose PC the silent store-pair predictor recognizes as a lock
    acquire may be *elided* by SLE/TLR hardware: it reports success
    without writing and the processor enters speculative lock-free
    transaction mode.
    """

    addr: int
    value: int
    pc: str = ""
    is_lock: bool = True


@dataclass
class AtomicSwap(Op):
    """Atomic exchange; result is the old value."""

    addr: int
    value: int
    pc: str = ""
    is_lock: bool = False


@dataclass
class AtomicCas(Op):
    """Atomic compare-and-swap; result is the old value (success iff it
    equals ``expect``)."""

    addr: int
    expect: int
    new: int
    pc: str = ""
    is_lock: bool = False


@dataclass
class Watch(Op):
    """Block until the line holding ``addr`` is invalidated or refilled.

    This is how spin-wait loops are modeled without polling: a
    test&test&set spinner holds a shared copy and can only observe a
    change after an invalidation, so waiting for the invalidation *is*
    the spin.  Wait time is charged as lock stall.  When ``expect`` is
    given, the watch completes immediately if the word's architectural
    value already differs (closing the read-then-watch race).
    """

    addr: int
    expect: int | None = None
    is_lock: bool = True
