"""Timing-approximate processor core.

One :class:`Processor` drives one thread program -- a generator coroutine
yielding architectural operations (:mod:`repro.cpu.isa`) -- through the
simulated memory system.  The model is in-order and blocking (one
outstanding demand access), with the timing knobs that matter to the
paper's evaluation: L1 hit latency, miss latency through the bus/network,
compute cycles, a misspeculation redirection penalty, and stall
attribution split into lock-variable and non-lock buckets (Figure 11).

Design rules that keep the concurrency semantics honest:

* **Effect points are synchronous.**  The architectural value effect of an
  access happens either at issue (L1 hit) or inside the data-arrival
  event (miss) -- never in a later scheduled event -- so atomic
  read-modify-writes cannot be torn by an interleaved coherence action.
  Generator *resumption* after a miss is a separate zero-delay event.
* **Epoch squashing.**  Misspeculation bumps an epoch counter; callbacks
  captured under an older epoch return without effect, modeling the
  squash of in-flight instructions.
* **Speculative stores** go to the write buffer; commit drains it in one
  event (atomic commit); misspeculation clears it (failure atomicity).
* **Spin-waits park.**  A ``Watch`` op subscribes to the line's next
  invalidation/refill instead of polling, with a value check at
  registration (no missed wakeups) and a slow backup poll as a liveness
  net for corner cases such as fills forced invalid.

Descheduling (Section 4 stability experiments) pauses the core at its
next resumption point; if it was speculating, the speculation is
discarded first -- leaving the lock free for other threads, which is
exactly TLR's non-blocking property.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.coherence.controller import CacheController
from repro.coherence.memory import ValueStore
from repro.cpu import isa
from repro.cpu.checkpoint import RestartSignal
from repro.cpu.predictor import RmwPredictor
from repro.cpu.writebuffer import WriteBuffer, WriteBufferOverflow
from repro.harness.config import SystemConfig
from repro.sim.kernel import Simulator
from repro.sim.stats import CpuStats
from repro.sle.elision import SpeculationManager

_PENDING = object()
_WATCH_BACKUP_POLL = 500  # cycles between liveness-net polls of a Watch


class Processor:
    """One simulated core executing one thread program."""

    def __init__(self, cpu_id: int, sim: Simulator,
                 controller: CacheController, store: ValueStore,
                 config: SystemConfig, stats: CpuStats):
        self.cpu_id = cpu_id
        self.sim = sim
        self.controller = controller
        self.store = store
        self.config = config
        self.stats = stats
        self.write_buffer = WriteBuffer(config.spec.write_buffer_entries)
        self.rmw = RmwPredictor(entries=config.spec.rmw_predictor_entries,
                                enabled=config.spec.rmw_predictor_enabled)
        self.spec = SpeculationManager(self, config, stats)
        controller.on_misspeculation = self._on_misspeculation
        controller.on_conflict_ts = self.spec.observe_conflict_ts
        self.gen: Optional[Generator] = None
        self.done = False
        self.epoch = 0
        self.cs_depth = 0
        self._cs_loads: dict[int, str] = {}
        self._last_ll: tuple[int, int] = (-1, 0)
        self._debt = 0
        self._paused = False
        self._stashed: Optional[tuple[Any, Optional[BaseException]]] = None
        self._restart_pending: Optional[RestartSignal] = None
        self._pending_timer = None
        self.misspec_penalty = config.spec.misspec_penalty
        self._restart_streak = 0
        # Observers called at each atomic commit with
        # (cycle, cpu_id, {addr: value}) -- the committed write set.
        # Used by linearizability checkers and analysis tools; empty in
        # normal runs.
        self.commit_listeners: list = []
        # Optional metrics collector (repro.obs.MachineMetrics); None in
        # normal runs so restarts pay only an attribute test.
        self.obs = None
        # Optional completion callback (the repro.sched engine refills a
        # freed CPU slot immediately instead of waiting for its next
        # timer tick); None unless a scheduler is attached.
        self.on_finish = None
        # Hot-path constants and precomputed event labels (f-string
        # construction showed up in profiles at one label per event).
        self._hit_latency = config.cache.hit_latency
        self._read_esc_threshold = config.spec.read_escalation_threshold
        self._labels: dict[str, str] = {}
        self._label_compute = f"cpu{cpu_id}-compute"
        self._label_restart = f"cpu{cpu_id}-restart"
        self._label_spinpoll = f"cpu{cpu_id}-spinpoll"
        # Type-keyed op dispatch instead of an isinstance chain; falls
        # back to the chain for Op subclasses (see _execute_slow).
        self._dispatch = {
            isa.Read: self._do_read,
            isa.Write: self._do_write,
            isa.Compute: self._do_compute,
            isa.LoadLinked: self._do_ll,
            isa.StoreConditional: self._do_sc,
            isa.AtomicSwap: self._do_swap,
            isa.AtomicCas: self._do_cas,
            isa.Watch: self._do_watch,
        }

    def __repr__(self) -> str:
        state = "done" if self.done else (
            "paused" if self._paused else "running")
        return f"<Processor cpu{self.cpu_id} {state}>"

    # ------------------------------------------------------------------
    # Program control
    # ------------------------------------------------------------------
    def run_program(self, gen: Generator, start_delay: int = 0) -> None:
        """Attach the thread program and schedule its first step."""
        self.gen = gen
        self.sim.add_actor(self)
        self.sim.schedule(start_delay, self._advance, None,
                          label=f"cpu{self.cpu_id}-start")

    def deschedule(self) -> None:
        """Operating-system deschedule: pause at the next step boundary.

        If the core is speculating, the speculation is discarded first
        (updates thrown away, lock left free) -- TLR's restartable
        critical sections.  Under BASE a held lock simply stays held.
        """
        self._paused = True
        if self.spec.active:
            self.controller.abort_speculation()
            self._on_misspeculation("deschedule", 0)

    def terminate(self) -> None:
        """Operating-system thread kill (Section 4's restartable
        critical sections).

        If the thread was speculating, the speculation is discarded --
        no partial update ever reached memory, the lock was never held,
        and other threads are unaffected.  Under BASE a thread killed
        inside a critical section leaves the lock held forever; the
        caller can observe that difference (it is the paper's stability
        argument).
        """
        if self.done:
            return
        if self.spec.active:
            self.controller.abort_speculation()
            self.epoch += 1
            self.write_buffer.clear()
            self.spec.on_misspeculation("terminated", resource=True)
        self.epoch += 1
        if self._pending_timer is not None:
            self._pending_timer.cancel()
            self._pending_timer = None
        if self.gen is not None:
            self.gen.close()
        self._finish()

    def reschedule(self) -> None:
        """Resume a descheduled core."""
        if not self._paused:
            return
        self._paused = False
        if self._restart_pending is not None:
            signal, self._restart_pending = self._restart_pending, None
            self.sim.schedule(0, self._advance, None, signal,
                              label=f"cpu{self.cpu_id}-resume-restart")
        elif self._stashed is not None:
            (value, throw), self._stashed = self._stashed, None
            self.sim.schedule(0, self._advance, value, throw,
                              label=f"cpu{self.cpu_id}-resume")

    # ------------------------------------------------------------------
    # Critical-section bookkeeping (driven by the runtime's lock code)
    # ------------------------------------------------------------------
    def enter_cs(self) -> None:
        self.cs_depth += 1
        if self.cs_depth == 1:
            self.stats.critical_sections += 1

    def exit_cs(self) -> None:
        self.cs_depth = max(0, self.cs_depth - 1)
        if self.cs_depth == 0:
            for pc in self._cs_loads.values():
                self.rmw.train_not_rmw(pc)
            self._cs_loads.clear()

    @property
    def in_cs(self) -> bool:
        return self.cs_depth > 0

    # ------------------------------------------------------------------
    # The stepping loop
    # ------------------------------------------------------------------
    def _advance(self, value: Any,
                 throw: Optional[BaseException] = None) -> None:
        if self.done or self.gen is None:
            return
        if self._paused:
            self._stashed = (value, throw)
            return
        while True:
            try:
                if throw is not None:
                    op = self.gen.throw(throw)
                    throw = None
                else:
                    op = self.gen.send(value)
            except StopIteration:
                self._finish()
                return
            result = self._execute(op)
            if result is _PENDING:
                return
            value = result
            if self._debt >= 8:
                debt, self._debt = self._debt, 0
                self._resume_later(value, delay=debt, label="debt")
                return

    def _finish(self) -> None:
        self.done = True
        self.stats.finish_time = self.sim.now
        self.gen = None
        if self.on_finish is not None:
            self.on_finish(self)

    # ------------------------------------------------------------------
    # Op dispatch
    # ------------------------------------------------------------------
    def _execute(self, op: isa.Op) -> Any:
        handler = self._dispatch.get(type(op))
        if handler is not None:
            return handler(op)
        return self._execute_slow(op)

    def _execute_slow(self, op: isa.Op) -> Any:
        """isinstance fallback for Op subclasses not in the type table."""
        if isinstance(op, isa.Read):
            return self._do_read(op)
        if isinstance(op, isa.Write):
            return self._do_write(op)
        if isinstance(op, isa.Compute):
            return self._do_compute(op)
        if isinstance(op, isa.LoadLinked):
            return self._do_ll(op)
        if isinstance(op, isa.StoreConditional):
            return self._do_sc(op)
        if isinstance(op, isa.AtomicSwap):
            return self._do_swap(op)
        if isinstance(op, isa.AtomicCas):
            return self._do_cas(op)
        if isinstance(op, isa.Watch):
            return self._do_watch(op)
        raise TypeError(f"unknown operation {op!r}")

    # -- helpers --------------------------------------------------------
    def _arch_read(self, addr: int) -> int:
        if self.spec.active:
            buffered = self.write_buffer.read(addr)
            if buffered is not None:
                return buffered
        return self.store.read(addr)

    def _charge_wait(self, issue_time: int, is_lock: bool) -> None:
        self.stats.charge_stall(self.sim.now - issue_time, is_lock)

    def _resume_later(self, value: Any, delay: int = 0,
                      label: str = "resume") -> None:
        """Resume the coroutine in a fresh event (used from inside
        coherence callbacks to avoid deep re-entrancy).  The resumption
        is epoch-guarded: if a misspeculation squashes the pipeline
        before the event fires, the stale resume is dropped instead of
        injecting its value into the restarted program."""
        cached = self._labels.get(label)
        if cached is None:
            cached = self._labels[label] = f"cpu{self.cpu_id}-{label}"
        self.sim.schedule(delay, self._epoch_advance, self.epoch, value,
                          label=cached)

    def _epoch_advance(self, epoch: int, value: Any) -> None:
        """Scheduled resume body (a bound method, not a per-call closure;
        this fires once per completed op and showed up in profiles)."""
        if self.epoch != epoch:
            return
        self._advance(value)

    def _note_cs_load(self, op) -> None:
        if self.in_cs and op.pc and not op.is_lock:
            self._cs_loads[op.addr] = op.pc

    def _train_store(self, addr: int) -> None:
        pc = self._cs_loads.pop(addr, None)
        if pc is not None:
            self.rmw.train_rmw(pc)

    def _want_exclusive(self, op) -> bool:
        """Read-exclusive prediction (Section 3.1.2)."""
        if op.is_lock:
            return False  # SLE never requests exclusive lock permissions
        if (self.spec.active
                and self.controller.upgrade_violations[isa.line_of(op.addr)]
                >= self._read_esc_threshold):
            return True
        return self.in_cs and self.rmw.predict_exclusive(op.pc)

    # -- loads ----------------------------------------------------------
    def _do_read(self, op: isa.Read) -> Any:
        self.stats.loads += 1
        self.stats.ops_completed += 1
        if self.spec.active:
            buffered = self.write_buffer.read(op.addr)
            if buffered is not None:
                self._debt += self._hit_latency
                return buffered
        line = isa.line_of(op.addr)
        want_x = self._want_exclusive(op)
        # A read the predictor fetched exclusive belongs to the write set:
        # letting another reader demote the line mid-transaction would
        # force the predicted store into an upgrade (and, if we are also
        # deferring that reader's chain, a self-deadlock).
        as_written = want_x and self.spec.active
        if self.controller.try_hit(line, want_x):
            value = self._arch_read(op.addr)
            self.controller.mark_accessed(line, written=as_written)
            self._note_cs_load(op)
            self._debt += self._hit_latency
            return value
        issue_time = self.sim.now
        epoch = self.epoch

        def effect() -> None:
            if self.epoch != epoch:
                return
            value = self._arch_read(op.addr)
            self.controller.mark_accessed(line, written=as_written)
            self._note_cs_load(op)
            self._charge_wait(issue_time, op.is_lock)
            self._resume_later(value)

        hit = self.controller.access(line, write=False, on_effect=effect,
                                     want_exclusive=want_x,
                                     is_lock=op.is_lock,
                                     still_wanted=lambda: self.epoch == epoch)
        if hit:
            value = self._arch_read(op.addr)
            self.controller.mark_accessed(line, written=as_written)
            self._note_cs_load(op)
            self._debt += self._hit_latency
            return value
        return _PENDING

    # -- stores ---------------------------------------------------------
    def _do_write(self, op: isa.Write) -> Any:
        self.stats.stores += 1
        self.stats.ops_completed += 1
        epoch_before = self.epoch
        if self.spec.absorbs_release(op):
            self._debt += self._hit_latency
            return None
        if self.epoch != epoch_before:
            # Absorption killed the speculation (non-silent store pair):
            # this store belongs to the squashed transaction and the
            # restart is already scheduled.
            return _PENDING
        line = isa.line_of(op.addr)
        if self.controller.try_hit(line, True):
            if not self._apply_store(op):
                return _PENDING
            self._debt += self._hit_latency
            return None
        issue_time = self.sim.now
        epoch = self.epoch

        def effect() -> None:
            if self.epoch != epoch:
                return
            if not self._apply_store(op):
                return  # resource fallback under way; op squashed
            self._charge_wait(issue_time, op.is_lock)
            self._resume_later(None)

        hit = self.controller.access(line, write=True, on_effect=effect,
                                     is_lock=op.is_lock,
                                     still_wanted=lambda: self.epoch == epoch)
        if hit:
            if not self._apply_store(op):
                return _PENDING
            self._debt += self._hit_latency
            return None
        return _PENDING

    def _apply_store(self, op) -> bool:
        """Perform a store's architectural effect; False on fallback."""
        line = isa.line_of(op.addr)
        if self.spec.active:
            try:
                self.write_buffer.write(op.addr, op.value)
            except WriteBufferOverflow:
                self.resource_fallback("wb-overflow")
                return False
            self.controller.mark_accessed(line, written=True)
        else:
            self.store.write(op.addr, op.value)
        self._train_store(op.addr)
        return True

    # -- compute ----------------------------------------------------
    def _do_compute(self, op: isa.Compute) -> Any:
        self.stats.compute_cycles += op.cycles
        self.stats.ops_completed += 1
        cycles = max(1, op.cycles + self._debt)
        self._debt = 0
        self._pending_timer = self.sim.schedule(
            cycles, self._compute_resume, self.epoch,
            label=self._label_compute)
        return _PENDING

    def _compute_resume(self, epoch: int) -> None:
        self._pending_timer = None
        if self.epoch != epoch:
            return
        self._advance(None)

    # -- LL/SC ------------------------------------------------------
    def _do_ll(self, op: isa.LoadLinked) -> Any:
        self.stats.loads += 1
        self.stats.ops_completed += 1
        line = isa.line_of(op.addr)
        if self.controller.try_hit(line, False):
            value = self._ll_apply(op, line)
            self._debt += self._hit_latency
            return value
        issue_time = self.sim.now
        epoch = self.epoch

        def effect() -> None:
            if self.epoch != epoch:
                return
            value = self._ll_apply(op, line)
            self._charge_wait(issue_time, op.is_lock)
            self._resume_later(value)

        hit = self.controller.access(line, write=False, on_effect=effect,
                                     is_lock=op.is_lock,
                                     still_wanted=lambda: self.epoch == epoch)
        if hit:
            value = self._ll_apply(op, line)
            self._debt += self._hit_latency
            return value
        return _PENDING

    def _ll_apply(self, op: isa.LoadLinked, line: int) -> int:
        """LL's architectural effect (shared by the hit and fill paths)."""
        value = self._arch_read(op.addr)
        self.controller.set_link(line)
        self._last_ll = (op.addr, value)
        if self.spec.active:
            self.controller.mark_accessed(line, written=False)
        return value

    def _do_sc(self, op: isa.StoreConditional) -> Any:
        self.stats.stores += 1
        self.stats.ops_completed += 1
        line = isa.line_of(op.addr)
        if not self.controller.link_valid(line):
            self._debt += self._hit_latency
            return False
        ll_addr, ll_value = self._last_ll
        if ll_addr == op.addr and self.spec.try_elide(
                op, free_value=ll_value, cs_depth=self.cs_depth):
            # Elided: the lock line stays shared; mark it accessed so any
            # external write to the lock kills the speculation.
            self.controller.mark_accessed(line, written=False)
            self._debt += self._hit_latency
            return True
        if self.controller.try_hit(line, True):
            success = self._sc_apply(op, line)
            self._debt += self._hit_latency
            return success
        issue_time = self.sim.now
        epoch = self.epoch

        def effect() -> None:
            if self.epoch != epoch:
                return
            success = self._sc_apply(op, line)
            self._charge_wait(issue_time, op.is_lock)
            self._resume_later(success)

        hit = self.controller.access(line, write=True, on_effect=effect,
                                     is_lock=op.is_lock,
                                     still_wanted=lambda: self.epoch == epoch)
        if hit:
            success = self._sc_apply(op, line)
            self._debt += self._hit_latency
            return success
        return _PENDING

    def _sc_apply(self, op: isa.StoreConditional, line: int) -> bool:
        """SC's architectural effect (shared by the hit and fill paths)."""
        if not self.controller.link_valid(line):
            return False
        if self.spec.active:
            try:
                self.write_buffer.write(op.addr, op.value)
            except WriteBufferOverflow:
                self.resource_fallback("wb-overflow")
                return False
            self.controller.mark_accessed(line, written=True)
        else:
            self.store.write(op.addr, op.value)
        return True

    # -- atomics ------------------------------------------------------
    def _do_swap(self, op: isa.AtomicSwap) -> Any:
        return self._do_atomic(op, swap=True)

    def _do_cas(self, op: isa.AtomicCas) -> Any:
        return self._do_atomic(op, swap=False)

    def _do_atomic(self, op, swap: bool) -> Any:
        self.stats.stores += 1
        self.stats.ops_completed += 1
        line = isa.line_of(op.addr)
        if self.controller.try_hit(line, True):
            old = self._atomic_apply(op, line, swap)
            self._debt += self._hit_latency
            return old
        issue_time = self.sim.now
        epoch = self.epoch

        def effect() -> None:
            if self.epoch != epoch:
                return
            old = self._atomic_apply(op, line, swap)
            self._charge_wait(issue_time, op.is_lock)
            self._resume_later(old)

        hit = self.controller.access(line, write=True, on_effect=effect,
                                     is_lock=op.is_lock,
                                     still_wanted=lambda: self.epoch == epoch)
        if hit:
            old = self._atomic_apply(op, line, swap)
            self._debt += self._hit_latency
            return old
        return _PENDING

    def _atomic_apply(self, op, line: int, swap: bool) -> int:
        """Swap/CAS architectural effect (hit and fill paths)."""
        old = self._arch_read(op.addr)
        new = op.value if swap else (
            op.new if old == op.expect else None)
        if new is not None:
            if self.spec.active:
                self.write_buffer.write(op.addr, new)
                self.controller.mark_accessed(line, written=True)
            else:
                self.store.write(op.addr, new)
        elif self.spec.active:
            self.controller.mark_accessed(line, written=True)
        return old

    # -- spin-wait ----------------------------------------------------
    def _do_watch(self, op: isa.Watch) -> Any:
        self.stats.ops_completed += 1
        line = isa.line_of(op.addr)
        issue_time = self.sim.now
        epoch = self.epoch
        expect = getattr(op, "expect", None)
        woken = False

        def wake() -> None:
            nonlocal woken
            if woken or self.epoch != epoch or self.done:
                return
            woken = True
            waited = self.sim.now - issue_time
            self.stats.spin_cycles += waited
            self.stats.charge_stall(waited, is_lock=True)
            self._resume_later(None)

        def backup_poll() -> None:
            if woken or self.epoch != epoch or self.done:
                return
            if expect is None or self.store.read(op.addr) != expect:
                wake()
            else:
                self.sim.schedule(_WATCH_BACKUP_POLL, backup_poll,
                                  label=self._label_spinpoll)

        if expect is not None and self.store.read(op.addr) != expect:
            # The value already changed between the read and the watch.
            self._debt += 1
            return None
        self.controller.watch(line, wake)
        self.sim.schedule(_WATCH_BACKUP_POLL, backup_poll,
                          label=self._label_spinpoll)
        return _PENDING

    # ------------------------------------------------------------------
    # Transaction commit / abort
    # ------------------------------------------------------------------
    def commit_transaction(self) -> None:
        """Atomic commit of the current lock-free transaction."""
        if self.commit_listeners:
            snapshot = self.write_buffer.snapshot()
            for listener in self.commit_listeners:
                listener(self.sim.now, self.cpu_id, snapshot)
        self.write_buffer.drain(self.store)
        self.controller.commit_speculation()
        self.spec.on_commit()
        self.controller.policy.on_commit()
        self._restart_streak = 0

    def resource_fallback(self, reason: str) -> None:
        """Speculation cannot continue (buffer/cache limits, non-undoable
        operation): abort and arrange a real lock acquisition."""
        if not self.spec.active:
            return
        self.stats.resource_fallbacks += 1
        self.controller.abort_speculation()
        self._on_misspeculation(reason, 0)

    def _on_misspeculation(self, reason: str, line_addr: int) -> None:
        """Controller (or self) reports the speculation died."""
        if not self.spec.active:
            return
        self.epoch += 1
        self.write_buffer.clear()
        self._cs_loads.clear()
        resource = reason in ("capacity", "wb-overflow", "non-silent-pair",
                              "deschedule")
        depth = self.spec.on_misspeculation(reason, resource)
        self.stats.restarts += 1
        self.stats.restart_reasons[reason] += 1
        self.cs_depth = min(self.cs_depth, max(0, depth))
        if self._pending_timer is not None:
            self._pending_timer.cancel()
            self._pending_timer = None
        signal = RestartSignal(depth, reason)
        if self._paused:
            self._restart_pending = signal
            return
        # Restart pacing is the contention policy's call; the default
        # (backoff_for -> None) is the paper's behaviour -- repeated
        # conflict losses back off linearly (capped): an immediately
        # re-issued request would re-enter the same chain mid-flight and
        # lose again, and the paper's "restart or forced to wait"
        # resolution expects losers to wait out the winner.
        self._restart_streak += 1
        policy = self.controller.policy
        policy.on_restart(reason, self._restart_streak)
        backoff = policy.backoff_for(self._restart_streak)
        if backoff is None:
            step = self.config.spec.restart_backoff_step
            backoff = self.misspec_penalty + step * min(
                self._restart_streak - 1, 15)
        if self.obs is not None:
            self.obs.on_restart(self, reason, backoff, self._restart_streak)
        self.sim.schedule(backoff, self._advance, None, signal,
                          label=self._label_restart)
