"""Processor substrate: ISA ops, core model, buffers, predictors."""

from repro.cpu.checkpoint import (ElisionRecord, RestartSignal,
                                  SpeculationCheckpoint)
from repro.cpu.isa import (AtomicCas, AtomicSwap, Compute, LoadLinked, Op,
                           Read, StoreConditional, Watch, Write, line_of)
from repro.cpu.predictor import RmwPredictor, StorePairPredictor
from repro.cpu.processor import Processor
from repro.cpu.writebuffer import WriteBuffer, WriteBufferOverflow

__all__ = [
    "Processor", "WriteBuffer", "WriteBufferOverflow",
    "RmwPredictor", "StorePairPredictor",
    "RestartSignal", "ElisionRecord", "SpeculationCheckpoint",
    "Op", "Read", "Write", "Compute", "LoadLinked", "StoreConditional",
    "AtomicSwap", "AtomicCas", "Watch", "line_of",
]
