"""The speculative write buffer.

During a lock-free transaction all stores are buffered here instead of
being exposed; commit drains the buffer into the architectural value store
atomically (SLE's atomic commit mechanism), misspeculation simply clears
it (failure atomicity).  As in the paper (Section 3.3), writes merge:
capacity is counted in *unique cache lines* written, because a line needs
exclusive ownership once no matter how many words of it are rewritten.
"""

from __future__ import annotations

from typing import Optional

from repro.cpu.isa import line_of


class WriteBufferOverflow(Exception):
    """The transaction wrote more unique lines than the buffer holds.

    This is the resource-constraint signal of the paper's Section 3.3:
    the processor must fall back to acquiring the lock.
    """


class WriteBuffer:
    """Word-granularity speculative store buffer with line-count capacity."""

    def __init__(self, capacity_lines: int):
        self.capacity_lines = capacity_lines
        self._words: dict[int, int] = {}
        self._lines: set[int] = set()

    def write(self, addr: int, value: int) -> None:
        """Buffer a speculative store; raises on line-capacity overflow."""
        line = line_of(addr)
        if line not in self._lines and len(self._lines) >= self.capacity_lines:
            raise WriteBufferOverflow(
                f"{self.capacity_lines}-line write buffer overflow")
        self._lines.add(line)
        self._words[addr] = value

    def read(self, addr: int) -> Optional[int]:
        """Store-to-load forwarding: newest buffered value, if any."""
        return self._words.get(addr)

    def lines(self) -> set[int]:
        return set(self._lines)

    def snapshot(self) -> dict[int, int]:
        """A copy of the buffered write set (addr -> value)."""
        return dict(self._words)

    def drain(self, store) -> int:
        """Commit all buffered words into the architectural store.

        Returns the number of words written.  The caller performs this in
        a single simulation event, which is what makes the commit atomic.
        """
        count = 0
        for addr, value in self._words.items():
            store.write(addr, value)
            count += 1
        self.clear()
        return count

    def clear(self) -> None:
        self._words.clear()
        self._lines.clear()

    def __len__(self) -> int:
        return len(self._words)

    def __bool__(self) -> bool:
        return bool(self._words)
