"""repro -- a reproduction of "Transactional Lock-Free Execution of
Lock-Based Programs" (Rajwar & Goodman, ASPLOS 2002).

The package simulates a snooping cache-coherent multiprocessor in enough
detail to reproduce the paper's evaluation: Speculative Lock Elision,
Transactional Lock Removal (timestamp-ordered deferral of conflicting
coherence requests), test&test&set and MCS locks, and the paper's
microbenchmarks and application-style workloads.

Typical use::

    from repro import SystemConfig, SyncScheme, run
    from repro.workloads import single_counter

    result = run(single_counter(num_threads=8),
                 SystemConfig(num_cpus=8, scheme=SyncScheme.TLR))
    print(result.cycles, result.stats.summary())
"""

from repro.harness.cache import ResultCache
from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.machine import Machine
from repro.harness.jobs import JobResult, submit
from repro.harness.parallel import FailedRun, SweepTelemetry, run
from repro.harness.runner import RunResult, execute_workload
from repro.harness.spec import ExperimentSpec, JobSpec, RunSpec
from repro.runtime.env import ThreadEnv
from repro.runtime.program import ValidationError, Workload

__version__ = "1.0.0"

__all__ = [
    "SystemConfig", "SyncScheme", "Machine", "RunResult",
    "run", "execute_workload", "submit",
    "RunSpec", "ExperimentSpec", "JobSpec", "JobResult",
    "ResultCache", "FailedRun", "SweepTelemetry",
    "ThreadEnv", "Workload", "ValidationError",
    "__version__",
]
