"""Figure 7 / Section 6.1: queueing on the data itself.

Four processors hammer one cache line under TLR: requests are deferred
and the line is handed processor-to-processor at commit.  The paper's
claim is that no transaction needs to restart and no lock requests are
generated; we report restarts, deferrals, and committed elisions.
"""

from repro.harness.experiments import figure7_queue_on_data
from repro.harness.report import dict_table

from conftest import bench_json, emit, scale


def test_figure7(benchmark):
    result = benchmark.pedantic(
        figure7_queue_on_data,
        kwargs={"num_cpus": 4, "total_increments": 256 * scale()},
        rounds=1, iterations=1)
    emit("figure7-queue-on-data", dict_table(result))
    bench_json("fig07_queue", benchmark,
               config={"num_cpus": 4, "total_increments": 256 * scale()},
               results=dict(result))
    benchmark.extra_info.update(result)
    assert result["elisions_committed"] == result["critical_sections"] \
        or result["restarts"] < result["critical_sections"] // 4
    assert result["deferrals"] > 0
