"""Figure 8: multiple-counter microbenchmark (coarse-grain/no-conflicts).

Regenerates the paper's cycles-vs-processor-count series for BASE, MCS,
BASE+SLE and BASE+SLE+TLR.  Expected shape: BASE degrades with processor
count (lock contention with no data sharing), MCS is flat-ish with a
software overhead, SLE and TLR are identical (no conflicts) and scale.
"""

from repro.harness.config import SyncScheme
from repro.harness.experiments import figure8_multiple_counter
from repro.harness.report import ascii_series, sweep_table

from conftest import (bench_json, emit, engine_kwargs, processor_counts,
                      scale, sweep_results)


def test_figure8(benchmark):
    result = benchmark.pedantic(
        figure8_multiple_counter,
        kwargs={"total_increments": 1024 * scale(),
                "processor_counts": processor_counts(),
                **engine_kwargs()},
        rounds=1, iterations=1)
    emit("figure8-multiple-counter",
         sweep_table(result) + "\n\n" + ascii_series(result))
    bench_json("fig08_multiple_counter", benchmark,
               config={"total_increments": 1024 * scale(),
                       "processor_counts": list(processor_counts())},
               results=sweep_results(result))
    for scheme, series in result.series.items():
        benchmark.extra_info[scheme.value] = series
    # Shape assertions (the paper's qualitative claims).
    n = result.processor_counts[-1]
    assert result.cycles(SyncScheme.TLR, n) == result.cycles(SyncScheme.SLE, n)
    assert result.cycles(SyncScheme.TLR, n) < result.cycles(SyncScheme.MCS, n)
    assert result.cycles(SyncScheme.TLR, n) < result.cycles(SyncScheme.BASE, n)
