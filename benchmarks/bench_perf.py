"""Simulator throughput: events/sec, wall seconds, and peak RSS on the
profiled hot workloads (Figure 9 point, Figure 10 point, one
policy-grid cell, and the 64-CPU ``big_machine`` scale point), measured
as an interleaved A/B over both kernel backends.

Unlike the figure/table benchmarks this one measures the *simulator*,
not the simulated machine: the deterministic run shape (``events``,
``cycles``, ``fingerprint``) must not move unless the simulation
changed, while ``events_per_sec``/``wall_s`` track implementation
speed.  The top-level ``results`` rows are the reference backend (kept
there for cross-commit trend comparability); the batched backend's
rows and the speedup table land under ``config``.  ``repro trend``
classifies a falling ``events_per_sec`` (or a rising ``wall_s``) as a
regression; CI additionally hard-gates a >25% events/sec drop via
``repro perf --check`` (wall noise alone only warns) and any
cross-backend fingerprint mismatch via ``--ab``.
"""

import os

from repro.harness.perf import run_perf, render_table

from conftest import bench_json, emit


def test_perf(benchmark):
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    payload = benchmark.pedantic(
        run_perf, kwargs={"quick": quick, "repeats": 3, "ab": True},
        rounds=1, iterations=1)
    emit("perf-throughput", render_table(payload))
    bench_json("perf", benchmark, config=payload["config"],
               results=payload["results"])
    for name, row in payload["results"].items():
        benchmark.extra_info[name] = row["events_per_sec"]
    # The run shape is pinned: every workload must actually have run.
    for name, row in payload["results"].items():
        assert row["events"] > 0, name
        assert row["fingerprint"], name
