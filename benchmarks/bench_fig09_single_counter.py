"""Figure 9: single-counter microbenchmark (fine-grain/high-conflict).

Regenerates the cycles-vs-processors series including the TLR-strict-ts
variant of Section 3.2.  Expected shape: BASE and SLE degrade together
(SLE falls back under conflicts), MCS is scalable at a constant
overhead, TLR queues on the data and stays flat and lowest, and
TLR-strict-ts sits above TLR (protocol-order/timestamp-order mismatch
restarts).
"""

from repro.harness.config import SyncScheme
from repro.harness.experiments import figure9_single_counter
from repro.harness.report import ascii_series, sweep_table

from conftest import (bench_json, emit, engine_kwargs, processor_counts,
                      scale, sweep_results)


def test_figure9(benchmark):
    result = benchmark.pedantic(
        figure9_single_counter,
        kwargs={"total_increments": 512 * scale(),
                "processor_counts": processor_counts(),
                **engine_kwargs()},
        rounds=1, iterations=1)
    emit("figure9-single-counter",
         sweep_table(result) + "\n\n" + ascii_series(result))
    bench_json("fig09_single_counter", benchmark,
               config={"total_increments": 512 * scale(),
                       "processor_counts": list(processor_counts())},
               results=sweep_results(result))
    for scheme, series in result.series.items():
        benchmark.extra_info[scheme.value] = series
    n = result.processor_counts[-1]
    tlr = result.cycles(SyncScheme.TLR, n)
    assert tlr < result.cycles(SyncScheme.BASE, n)
    assert tlr < result.cycles(SyncScheme.MCS, n)
    assert tlr < result.cycles(SyncScheme.SLE, n)
    assert tlr < result.cycles(SyncScheme.TLR_STRICT_TS, n)
