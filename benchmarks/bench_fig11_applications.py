"""Figure 11 + Section 6.3: application performance at 16 processors.

Regenerates the normalized-execution-time bars with the lock/non-lock
stall breakdown for BASE, BASE+SLE and BASE+SLE+TLR, plus the in-text
MCS comparison.  Expected shape (paper): TLR never loses to BASE; the
biggest wins are radiosity and mp3d; MCS loses to BASE on the
frequent-uncontended-lock codes (mp3d, water-nsq) and is competitive
with TLR only on barnes.
"""

from repro.harness.config import SyncScheme
from repro.harness.experiments import figure11_applications
from repro.harness.report import figure11_table, speedup_summary

from conftest import bench_json, emit, engine_kwargs


def test_figure11(benchmark):
    results = benchmark.pedantic(figure11_applications,
                                 kwargs={"num_cpus": 16, **engine_kwargs()},
                                 rounds=1, iterations=1)
    emit("figure11-applications",
         figure11_table(results) + "\n" + speedup_summary(results))
    bench_json("fig11_applications", benchmark,
               config={"num_cpus": 16},
               results={name: {
                   "cycles": {s.value: c for s, c in app.cycles.items()},
                   "speedups_over_base": {
                       s.value: app.speedup(s) for s in app.cycles},
               } for name, app in results.items()})
    for name, app in results.items():
        benchmark.extra_info[name] = {
            scheme.value: cycles for scheme, cycles in app.cycles.items()}
    # Paper-shape assertions.
    for name, app in results.items():
        assert app.speedup(SyncScheme.TLR) > 0.97, (
            f"{name}: TLR lost to BASE")
    assert results["radiosity"].speedup(SyncScheme.TLR) > 1.3
    assert results["mp3d"].speedup(SyncScheme.TLR) > 1.2
    assert results["mp3d"].speedup(SyncScheme.MCS) < 1.0
    assert results["water-nsq"].speedup(SyncScheme.MCS) < 1.0
