"""Section 6.3 in-text experiment: read-modify-write predictor effect.

Speedup of BASE (with the PC-indexed predictor collapsing load->store
pairs in critical sections into one exclusive fetch) over BASE-no-opt.
The paper reports 1.00-1.33 per application; the predictor makes the
BASE case highly optimized and TLR's reported gains conservative.
"""

from repro.harness.experiments import table_rmw_predictor
from repro.harness.report import dict_table

from conftest import bench_json, emit, engine_kwargs


def test_rmw_predictor(benchmark):
    result = benchmark.pedantic(table_rmw_predictor,
                                kwargs={"num_cpus": 16, **engine_kwargs()},
                                rounds=1, iterations=1)
    emit("table-rmw-predictor", dict_table(result, "BASE / BASE-no-opt"))
    bench_json("tab_rmw_predictor", benchmark,
               config={"num_cpus": 16},
               results={"speedups_base_over_base_noopt": dict(result)})
    benchmark.extra_info.update(result)
    # The predictor never hurts and helps at least one application.
    assert all(speedup > 0.95 for speedup in result.values())
    assert any(speedup > 1.02 for speedup in result.values())
