"""Contention profiles of the policy grid's hot cells.

Profiles the two contended microbenchmarks under the two retention
policies at 8 processors and reports, per cell, the per-lock contention
totals, the critical-path lock ranking and the who-aborts-whom conflict
matrix (:mod:`repro.obs.profile`).  Expected shape: the nack policy
aborts more than timestamp deferral on the same cells (it restarts
where the deferral policy queues), and single-counter concentrates all
contention on one lock while linked-list spreads it.
"""

from repro.harness import parallel
from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.spec import SIZE_PARAM, RunSpec
from repro.obs.profile import critical_path

from conftest import bench_json, emit, engine_kwargs, scale

POLICIES = ("timestamp", "nack")
WORKLOADS = ("single-counter", "linked-list")
NUM_CPUS = 8


def _cells(ops):
    keys, specs = [], []
    for policy in POLICIES:
        for workload in WORKLOADS:
            config = SystemConfig(num_cpus=NUM_CPUS,
                                  scheme=SyncScheme.TLR
                                  ).with_policy(policy)
            keys.append(f"{policy}/{workload}")
            specs.append(RunSpec(workload=workload, config=config,
                                 workload_args={SIZE_PARAM[workload]:
                                                ops}))
    return keys, specs


def test_profile_hot_cells(benchmark):
    ops = 96 * scale()
    keys, specs = _cells(ops)
    outcomes, _ = benchmark.pedantic(
        parallel.execute, args=(specs,), kwargs=engine_kwargs(),
        rounds=1, iterations=1)

    rows = ["cell                        attempts commits aborts "
            "cycles-lost defer-wait hottest-lock"]
    totals, paths, matrices = {}, {}, {}
    for key, outcome in zip(keys, outcomes):
        snapshot = outcome.metrics["profile"]
        totals[key] = snapshot["totals"]
        paths[key] = [[lock, cycles]
                      for lock, cycles in critical_path(snapshot)[:3]]
        matrices[key] = snapshot["conflicts"]
        t = snapshot["totals"]
        hottest = paths[key][0][0] if paths[key] else "-"
        rows.append(f"{key:<27} {t['attempts']:>8} {t['commits']:>7} "
                    f"{t['aborts']:>6} {t['cycles_lost']:>11} "
                    f"{t['deferral_cycles']:>10} {hottest}")
    emit("profile-hot-cells", "\n".join(rows))

    bench_json("profile", benchmark,
               config={"policies": list(POLICIES),
                       "workloads": list(WORKLOADS),
                       "num_cpus": NUM_CPUS, "ops": ops},
               results={"totals": totals, "critical_path": paths,
                        "conflicts": matrices})
    for key in keys:
        benchmark.extra_info[key] = totals[key]["commit_rate"]

    # The deferral policy queues where the nack policy restarts, so it
    # never aborts more -- and every cell actually contends.
    for workload in WORKLOADS:
        assert (totals[f"timestamp/{workload}"]["aborts"]
                <= totals[f"nack/{workload}"]["aborts"]), workload
    for key in keys:
        assert totals[key]["attempts"] > totals[key]["commits"] > 0, key
