"""Ablations of the TLR design choices DESIGN.md calls out.

Each ablation toggles one mechanism and measures its contribution on
the workload that stresses it:

* retention policy (deferral vs NACK, Section 3) on the linked list --
  the paper chose deferral partly because NACKs add retry traffic;
* single-block relaxation (Section 3.2) on the single counter -- the
  TLR vs TLR-strict-ts gap of Figure 9, isolated;
* write-buffer capacity on cholesky -- smaller buffers force more
  resource fallbacks (real lock acquisitions);
* victim-cache size on a set-conflict-heavy transaction -- Section 4's
  "16-entry victim cache + 4-way cache guarantees 20 lines" contract;
* restart backoff on the strict-timestamp counter -- the cost of
  re-entering a conflict chain immediately after losing;
* untimestamped-request policy (Section 2.2's two options) on a racy
  reader.
"""

from dataclasses import replace

from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.parallel import run
from repro.workloads.apps import cholesky
from repro.workloads.microbench import linked_list, single_counter

from conftest import bench_json, emit, scale


def _cfg(num_cpus=8, scheme=SyncScheme.TLR, **spec_overrides):
    cfg = SystemConfig(num_cpus=num_cpus, scheme=scheme)
    if spec_overrides:
        cfg.spec = replace(cfg.spec, **spec_overrides)
    return cfg


def test_ablation_retention_policy(benchmark):
    def sweep():
        out = {}
        for policy in ("defer", "nack"):
            result = run(linked_list(8, 512 * scale()),
                         _cfg(retention_policy=policy))
            out[f"{policy}/cycles"] = result.cycles
            out[f"{policy}/restarts"] = result.stats.restarts
            out[f"{policy}/nacks"] = result.stats.total("nacks_sent")
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation-retention-policy", "\n".join(
        f"{k:<18}{v}" for k, v in result.items()))
    bench_json("ablation_retention_policy", benchmark,
               config={"num_cpus": 8, "ops": 512 * scale(),
                       "policies": ["defer", "nack"]},
               results=dict(result))
    benchmark.extra_info.update(result)
    assert result["defer/nacks"] == 0
    assert result["nack/nacks"] > 0


def test_ablation_single_block_relaxation(benchmark):
    def sweep():
        out = {}
        for relaxed in (True, False):
            result = run(single_counter(8, 512 * scale()),
                         _cfg(single_block_relaxation=relaxed))
            key = "relaxed" if relaxed else "strict"
            out[f"{key}/cycles"] = result.cycles
            out[f"{key}/restarts"] = result.stats.restarts
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation-single-block-relaxation", "\n".join(
        f"{k:<18}{v}" for k, v in result.items()))
    bench_json("ablation_single_block_relaxation", benchmark,
               config={"num_cpus": 8, "ops": 512 * scale()},
               results=dict(result))
    benchmark.extra_info.update(result)
    assert result["relaxed/restarts"] < result["strict/restarts"]
    assert result["relaxed/cycles"] <= result["strict/cycles"]


def test_ablation_write_buffer_capacity(benchmark):
    def sweep():
        out = {}
        # cholesky's common columns write 12 lines and its tall columns
        # 80: an 8-entry buffer overflows on *every* column update, a
        # 16-entry buffer only on the tall tail, 64 likewise (tall
        # columns exceed even the paper's buffer -- its 3.7% fallbacks).
        for entries in (8, 16, 64):
            result = run(cholesky(8), _cfg(write_buffer_entries=entries))
            out[f"wb{entries}/cycles"] = result.cycles
            out[f"wb{entries}/fallbacks"] = result.stats.total(
                "resource_fallbacks")
            out[f"wb{entries}/elided"] = result.stats.total(
                "elisions_committed")
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation-write-buffer", "\n".join(
        f"{k:<18}{v}" for k, v in result.items()))
    bench_json("ablation_write_buffer", benchmark,
               config={"num_cpus": 8, "write_buffer_entries": [8, 16, 64]},
               results=dict(result))
    benchmark.extra_info.update(result)
    # With an 8-line buffer every column update overflows, the elision
    # predictor learns the column locks are hopeless, and far fewer
    # sections commit lock-free than with the paper's 64-line buffer.
    assert result["wb64/elided"] > result["wb8/elided"]


def test_ablation_restart_backoff(benchmark):
    def sweep():
        out = {}
        for step in (0, 20, 60):
            result = run(single_counter(8, 512 * scale()),
                         _cfg(scheme=SyncScheme.TLR_STRICT_TS,
                              restart_backoff_step=step))
            out[f"backoff{step}/cycles"] = result.cycles
            out[f"backoff{step}/restarts"] = result.stats.restarts
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation-restart-backoff", "\n".join(
        f"{k:<22}{v}" for k, v in result.items()))
    bench_json("ablation_restart_backoff", benchmark,
               config={"num_cpus": 8, "ops": 512 * scale(),
                       "backoff_steps": [0, 20, 60]},
               results=dict(result))
    benchmark.extra_info.update(result)
    # Backoff suppresses the restart storm under strict timestamps.
    assert result["backoff20/restarts"] < result["backoff0/restarts"]


def test_ablation_data_network_bandwidth(benchmark):
    """Sensitivity to data-network bandwidth: the paper's network is
    pipelined (unlimited); throttling deliveries slows the data-hungry
    BASE lock storms more than TLR's queued transfers."""
    def sweep():
        out = {}
        for interval in (0, 4, 16):
            for scheme in (SyncScheme.BASE, SyncScheme.TLR):
                cfg = SystemConfig(num_cpus=8, scheme=scheme)
                cfg.memory = replace(cfg.memory,
                                     data_bandwidth_interval=interval)
                result = run(single_counter(8, 512 * scale()), cfg)
                out[f"bw{interval}/{scheme.value}"] = result.cycles
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation-data-bandwidth", "\n".join(
        f"{k:<28}{v}" for k, v in result.items()))
    bench_json("ablation_data_bandwidth", benchmark,
               config={"num_cpus": 8, "ops": 512 * scale(),
                       "bandwidth_intervals": [0, 4, 16]},
               results=dict(result))
    benchmark.extra_info.update(result)
    # Throttling never speeds anything up.
    assert result["bw16/BASE"] >= result["bw0/BASE"]
    assert result["bw16/BASE+SLE+TLR"] >= result["bw0/BASE+SLE+TLR"]


def test_ablation_untimestamped_policy(benchmark):
    def sweep():
        out = {}
        for policy in ("defer", "abort"):
            result = run(single_counter(4, 256 * scale()),
                         _cfg(num_cpus=4, untimestamped_policy=policy))
            out[f"{policy}/cycles"] = result.cycles
            out[f"{policy}/restarts"] = result.stats.restarts
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("ablation-untimestamped-policy", "\n".join(
        f"{k:<18}{v}" for k, v in result.items()))
    bench_json("ablation_untimestamped_policy", benchmark,
               config={"num_cpus": 4, "ops": 256 * scale(),
                       "policies": ["defer", "abort"]},
               results=dict(result))
    benchmark.extra_info.update(result)
