"""Section 6.3 in-text experiment: coarse-grain vs fine-grain mp3d.

One lock over all cells against per-cell locks.  Expected shape: the
single coarse lock is catastrophic for BASE and MCS (severe contention)
but *faster* than fine grain under TLR (smaller data footprint, better
memory behaviour) -- the paper reports coarse-TLR beating fine-BASE by
2.40x and fine-TLR by 1.70x.
"""

from repro.harness.experiments import table_coarse_vs_fine
from repro.harness.report import dict_table

from conftest import bench_json, emit, engine_kwargs


def test_coarse_vs_fine(benchmark):
    result = benchmark.pedantic(table_coarse_vs_fine,
                                kwargs={"num_cpus": 16, **engine_kwargs()},
                                rounds=1, iterations=1)
    emit("table-coarse-vs-fine", dict_table(result))
    bench_json("tab_coarse_vs_fine", benchmark,
               config={"num_cpus": 16}, results=dict(result))
    benchmark.extra_info.update(
        {k: v for k, v in result.items() if isinstance(v, (int, float))})
    assert result["speedup_tlr_coarse_over_base_fine"] > 1.3
    assert result["speedup_tlr_coarse_over_tlr_fine"] > 1.0
    assert result["coarse/BASE"] > 2 * result["fine/BASE"]
