"""Contention-policy lab: the policy grid as a benchmark.

Runs every contention policy (timestamp deferral, NACK retention,
requester-wins with lock fallback, Polka-style backoff) over contended
and scalable workloads at several processor counts, with every run
checked by the serializability oracle and invariant monitors.  Expected
shape: all cells verify; the paper's timestamp deferral is the strongest
policy on the contended microbenchmarks (it queues on the data instead
of aborting), while requester-wins pays for its aborts and lock
fallbacks as contention grows.
"""

from repro.harness.experiments import policy_grid
from repro.harness.report import policy_grid_table

from conftest import bench_json, emit, engine_kwargs, scale

POLICIES = ("timestamp", "nack", "requester-wins", "backoff")
WORKLOADS = ("single-counter", "linked-list", "ocean-cont")
PROCS = (2, 4, 8)


def test_policy_grid(benchmark):
    grid = benchmark.pedantic(
        policy_grid,
        kwargs={"policies": POLICIES, "workloads": WORKLOADS,
                "processor_counts": PROCS, "seeds": 2,
                "ops": 96 * scale(), "app_scale": 12 * scale(),
                **engine_kwargs()},
        rounds=1, iterations=1)
    emit("policy-grid", policy_grid_table(grid))

    cycles = {key: cell["cycles"] for key, cell in grid.cells.items()}
    speedups = {}
    for workload in WORKLOADS:
        for n in PROCS:
            ts = cycles[f"timestamp/{workload}/{n}"]
            for policy in POLICIES:
                other = cycles[f"{policy}/{workload}/{n}"]
                if ts and other:
                    speedups[f"{policy}/{workload}/{n}"] = other / ts
    bench_json("policies", benchmark,
               config={"policies": list(POLICIES),
                       "workloads": list(WORKLOADS),
                       "processor_counts": list(PROCS),
                       "seeds": 2, "ops": 96 * scale(),
                       "app_scale": 12 * scale()},
               results={"cycles": cycles,
                        "slowdown_vs_timestamp": speedups,
                        "summaries": {key: cell["summary"]
                                      for key, cell in grid.cells.items()},
                        # Full per-cell telemetry: the per-policy
                        # deferral-depth / retry / latency histograms.
                        "metrics": {key: cell["metrics"]
                                    for key, cell in grid.cells.items()}})
    for key, value in cycles.items():
        benchmark.extra_info[key] = value

    # Every cell must pass the oracle + monitors -- a policy that wins
    # cycles by breaking serializability doesn't get on the board.
    assert grid.ok, f"verification failures: {grid.failures}"
    # The paper's policy queues on the data under contention; the
    # abort-based policy pays for its restarts and lock fallbacks.
    n = PROCS[-1]
    assert (cycles[f"timestamp/single-counter/{n}"]
            <= cycles[f"requester-wins/single-counter/{n}"])
