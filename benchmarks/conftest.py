"""Benchmark-harness helpers.

Each benchmark regenerates one of the paper's tables or figures: it runs
the experiment sweep, prints the same rows/series the paper reports (so
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation on
a terminal), attaches the numbers as ``extra_info`` for machine
consumption, writes a text artifact under ``benchmarks/out/``, and
drops a machine-readable ``BENCH_<name>.json`` at the repo root via
:func:`bench_json` (schema: the sweep's configuration knobs, the raw
per-point results, and the measured wall time).

Scale knobs: ``REPRO_BENCH_SCALE`` (default 1) multiplies workload
sizes; ``REPRO_BENCH_FULL=1`` switches to the full processor-count sweep
(2..16 in steps of 2) instead of the quick {2,4,8,16}.

Engine knobs: ``REPRO_BENCH_JOBS`` (default 1) fans each sweep's
independent runs out over worker processes (results are bit-identical
to serial); ``REPRO_BENCH_CACHE=1`` enables the on-disk result cache
(off by default so benchmark timings always measure real simulation).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"
REPO_ROOT = Path(__file__).parent.parent


def scale() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))


def jobs() -> int:
    return max(0, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


def engine_kwargs() -> dict:
    """Uniform sweep-engine arguments for every figure/table benchmark."""
    return {"jobs": jobs(),
            "cache": bool(os.environ.get("REPRO_BENCH_CACHE"))}


def processor_counts() -> tuple[int, ...]:
    if os.environ.get("REPRO_BENCH_FULL"):
        return (2, 4, 6, 8, 10, 12, 14, 16)
    return (2, 4, 8, 16)


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


def sweep_results(result) -> dict:
    """Flatten a SweepResult into the BENCH json ``results`` shape:
    per-scheme cycles at each processor count plus speedups over BASE
    (``None`` where a run failed)."""
    cycles = {scheme.value: list(series)
              for scheme, series in result.series.items()}
    out = {"processor_counts": list(result.processor_counts),
           "cycles": cycles}
    base = cycles.get("BASE")
    if base:
        out["speedups_over_base"] = {
            name: [b / c if b and c else None
                   for b, c in zip(base, series)]
            for name, series in cycles.items()}
    # Summarized conflict telemetry per sweep point ("SCHEME/procs" ->
    # {metric: number}); deterministic, so trend-comparable.
    metrics = result.extra.get("metrics")
    if metrics:
        out["metrics"] = metrics
    return out


def bench_json(name: str, benchmark, config: dict, results: dict) -> None:
    """Write ``BENCH_<name>.json`` at the repo root.

    ``config`` holds the sweep's knobs (scale, processor counts, seeds,
    ...), ``results`` the raw numbers (per-point cycles / speedups).
    The measured wall time comes from pytest-benchmark's stats when
    available (``None`` under ``--benchmark-disable``).
    """
    try:
        wall = float(benchmark.stats.stats.mean)
    except Exception:
        wall = None
    payload = {"bench": name, "config": config, "results": results,
               "wall_seconds": wall}
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
