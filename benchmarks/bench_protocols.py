"""Substrate comparison: TLR on broadcast snooping vs directory.

The paper's claim that TLR requires no coherence-protocol changes is
put to work: the identical TLR logic runs on the Gigaplane-like ordered
bus (the paper's machine) and on a line-interleaved directory protocol
over an unordered network.  The qualitative result -- TLR's win over
BASE -- must hold on both; absolute times differ with the substrate's
latency structure.
"""

from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.parallel import run
from repro.workloads.microbench import linked_list, single_counter

from conftest import bench_json, emit, scale


def test_protocol_comparison(benchmark):
    def sweep():
        out = {}
        for protocol in ("snoop", "directory"):
            for scheme in (SyncScheme.BASE, SyncScheme.TLR):
                for name, builder in (("single", single_counter),
                                      ("list", linked_list)):
                    cfg = SystemConfig(num_cpus=8, scheme=scheme,
                                       protocol=protocol)
                    result = run(builder(8, 512 * scale()), cfg)
                    out[f"{protocol}/{name}/{scheme.value}"] = result.cycles
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("protocol-comparison", "\n".join(
        f"{k:<36}{v}" for k, v in result.items()))
    bench_json("protocols", benchmark,
               config={"num_cpus": 8, "ops": 512 * scale(),
                       "protocols": ["snoop", "directory"]},
               results={"cycles": dict(result),
                        "speedups_over_base": {
                            f"{p}/{w}": result[f"{p}/{w}/BASE"]
                            / result[f"{p}/{w}/BASE+SLE+TLR"]
                            for p in ("snoop", "directory")
                            for w in ("single", "list")}})
    benchmark.extra_info.update(result)
    for protocol in ("snoop", "directory"):
        for name in ("single", "list"):
            assert (result[f"{protocol}/{name}/BASE+SLE+TLR"]
                    < result[f"{protocol}/{name}/BASE"]), (
                f"TLR lost to BASE on {protocol}/{name}")
