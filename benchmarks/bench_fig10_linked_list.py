"""Figure 10: doubly-linked-list microbenchmark (dynamic conflicts).

Expected shape: BASE and SLE degrade under contention (SLE cannot decide
when to speculate and falls back), MCS is scalable with overhead, TLR
exploits enqueue/dequeue concurrency that no single lock can expose.
"""

from repro.harness.config import SyncScheme
from repro.harness.experiments import figure10_linked_list
from repro.harness.report import ascii_series, sweep_table

from conftest import (bench_json, emit, engine_kwargs, processor_counts,
                      scale, sweep_results)


def test_figure10(benchmark):
    result = benchmark.pedantic(
        figure10_linked_list,
        kwargs={"total_ops": 512 * scale(),
                "processor_counts": processor_counts(),
                **engine_kwargs()},
        rounds=1, iterations=1)
    emit("figure10-linked-list",
         sweep_table(result) + "\n\n" + ascii_series(result))
    bench_json("fig10_linked_list", benchmark,
               config={"total_ops": 512 * scale(),
                       "processor_counts": list(processor_counts())},
               results=sweep_results(result))
    for scheme, series in result.series.items():
        benchmark.extra_info[scheme.value] = series
    n = result.processor_counts[-1]
    tlr = result.cycles(SyncScheme.TLR, n)
    assert tlr < result.cycles(SyncScheme.BASE, n)
    assert tlr < result.cycles(SyncScheme.MCS, n)
    assert tlr < result.cycles(SyncScheme.SLE, n)
