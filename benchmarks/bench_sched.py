"""Preemptive-scheduler lab: the sched grid as a benchmark.

Runs every scheduler core (round-robin, MLFQ, CFS-like fair) with more
runtime threads than CPU slots, so timer interrupts preempt threads
inside critical sections and speculative regions -- each preemption of
an in-flight elision is a context-switch abort, and the grid publishes
those counts per cell.  Every run is checked by the serializability
oracle and invariant monitors: a scheduler that goes fast by breaking
lock semantics fails its cell.
"""

from repro.harness.experiments import sched_grid
from repro.harness.report import sched_grid_table

from conftest import bench_json, emit, engine_kwargs, scale

SCHEDULERS = ("rr", "mlfq", "cfs")
QUANTA = (200, 800)
POLICIES = ("timestamp", "nack")
WORKLOADS = ("single-counter", "linked-list")
CPUS = 4
THREADS_PER_CPU = 2


def test_sched_grid(benchmark):
    grid = benchmark.pedantic(
        sched_grid,
        kwargs={"schedulers": SCHEDULERS, "quanta": QUANTA,
                "policies": POLICIES, "workloads": WORKLOADS,
                "num_cpus": CPUS, "threads_per_cpu": THREADS_PER_CPU,
                "seeds": 2, "ops": 96 * scale(),
                "app_scale": 12 * scale(), **engine_kwargs()},
        rounds=1, iterations=1)
    emit("sched-grid", sched_grid_table(grid))

    cycles = {key: cell["cycles"] for key, cell in grid.cells.items()}
    bench_json("sched", benchmark,
               config={"schedulers": list(SCHEDULERS),
                       "quanta": list(QUANTA),
                       "policies": list(POLICIES),
                       "workloads": list(WORKLOADS),
                       "num_cpus": CPUS,
                       "threads_per_cpu": THREADS_PER_CPU,
                       "seeds": 2, "ops": 96 * scale(),
                       "app_scale": 12 * scale()},
               results={"cycles": cycles,
                        # The telemetry the trend gate watches: work
                        # thrown away to preemption, per cell.
                        "preemptions": {
                            key: cell["preemptions"]
                            for key, cell in grid.cells.items()},
                        "context_switch_aborts": {
                            key: cell["context_switch_aborts"]
                            for key, cell in grid.cells.items()},
                        "migrations": {
                            key: cell["migrations"]
                            for key, cell in grid.cells.items()},
                        "summaries": {key: cell["summary"]
                                      for key, cell in grid.cells.items()}})
    for key, value in cycles.items():
        benchmark.extra_info[key] = value

    # Every cell must pass the oracle + monitors even under mid-CS
    # preemption -- that is the point of the experiment.
    assert grid.ok, f"verification failures: {grid.failures}"
    # A short quantum preempts at least as often as a long one on the
    # same (scheduler, policy, workload) cell.
    preempt = {key: cell["preemptions"] for key, cell in grid.cells.items()}
    for scheduler in SCHEDULERS:
        for policy in POLICIES:
            for workload in WORKLOADS:
                short = preempt[f"{scheduler}/q{QUANTA[0]}/{policy}/{workload}"]
                long_ = preempt[f"{scheduler}/q{QUANTA[-1]}/{policy}/{workload}"]
                assert short >= long_, (scheduler, policy, workload)
