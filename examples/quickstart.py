#!/usr/bin/env python3
"""Quickstart: run one lock-based program under all four hardware schemes.

Builds the paper's single-counter microbenchmark (one lock, one shared
counter, every processor incrementing it) and executes the *same
program* on four simulated machines:

* BASE          -- test&test&set spinlock, no speculation;
* BASE+SLE      -- speculative lock elision, falls back on conflicts;
* BASE+SLE+TLR  -- transactional lock removal (this paper);
* MCS           -- software queue locks.

Run:  python examples/quickstart.py [num_cpus] [increments]
"""

import sys

from repro import SyncScheme, SystemConfig, run
from repro.workloads import single_counter


def main() -> None:
    num_cpus = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    increments = int(sys.argv[2]) if len(sys.argv) > 2 else 1024

    print(f"single-counter: {increments} increments over {num_cpus} CPUs\n")
    header = (f"{'scheme':<26}{'cycles':>10}{'vs BASE':>9}"
              f"{'restarts':>10}{'deferred':>10}{'elided':>8}")
    print(header)
    print("-" * len(header))

    baseline = None
    for scheme in (SyncScheme.BASE, SyncScheme.SLE, SyncScheme.TLR,
                   SyncScheme.MCS):
        config = SystemConfig(num_cpus=num_cpus, scheme=scheme)
        result = run(single_counter(num_cpus, increments), config)
        if baseline is None:
            baseline = result.cycles
        summary = result.stats.summary()
        print(f"{scheme.value:<26}{result.cycles:>10}"
              f"{baseline / result.cycles:>9.2f}"
              f"{summary['restarts']:>10}"
              f"{summary['requests_deferred']:>10}"
              f"{summary['elisions_committed']:>8}")

    print("\nEvery run passed functional validation: the counter equals")
    print("the number of increments, i.e. the execution was serializable.")


if __name__ == "__main__":
    main()
