#!/usr/bin/env python3
"""Time-travel debugging a policy bug with the record/replay layer.

The session this walks through:

1. **Inject a bug**: invert TLR's timestamp conflict resolution (later
   transactions win) -- the paper's ordering guarantee, broken.
2. **Catch it**: fan `repro verify` across seeds until the monitors or
   the oracle flag a failing interleaving, then shrink it; the shrunk
   reproduction auto-captures a binary record log of the exact failing
   schedule.
3. **Walk the wreckage**: reconstruct machine state around the first
   violation from the log alone (no re-simulation).
4. **Bisect**: record the same spec on the *healthy* policy and diff
   the two logs -- the report names the first event where the broken
   schedule departs from the correct one.

Run:  python examples/time_travel_debug.py
"""

import os
import tempfile

import repro.policies.base as policy_base
import repro.policies.timestamp as policy_timestamp
from repro.coherence.messages import beats as healthy_beats
from repro.harness.config import SyncScheme, SystemConfig
from repro.harness.spec import RunSpec
from repro.record import Timeline, first_divergence, load_log
from repro.verify.explorer import shrink_failure, verify_run


def inverted_beats(challenger, incumbent):
    """The injected bug: the later timestamp wins every conflict."""
    if challenger is None or incumbent is None:
        return healthy_beats(challenger, incumbent)
    return not healthy_beats(challenger, incumbent)


def set_beat(fn) -> None:
    policy_base.beats = fn
    policy_timestamp.beats = fn


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="time-travel-")
    os.environ["REPRO_ARTIFACT_DIR"] = workdir
    spec = RunSpec(
        workload="linked-list",
        config=SystemConfig(num_cpus=8, scheme=SyncScheme.TLR),
        workload_args={"total_ops": 128},
        validate=False)

    # -- 1. break the policy, 2. find and shrink a failing seed -------
    print("== injecting inverted timestamp conflict resolution ==")
    set_beat(inverted_beats)
    try:
        failing = None
        for seed in range(16):
            verdict, _ = verify_run(spec.with_seed(seed))
            if not verdict.ok:
                failing = verdict
                print(f"seed {seed} FAILED: "
                      f"{(verdict.violations or [verdict.error])[0]}")
                break
        if failing is None:
            raise SystemExit("bug escaped 16 seeds (unexpected)")

        shrunk = shrink_failure(spec.with_seed(failing.seed))
        bad_log_path = shrunk.result.record_log
        print(f"\nshrunk to {shrunk.spec.workload_args} "
              f"cpus={shrunk.spec.config.num_cpus} after "
              f"{shrunk.shrink_steps} steps")
        print(f"auto-captured record log: {bad_log_path}")
    finally:
        set_beat(healthy_beats)

    # -- 3. reconstruct state around the failure from the log alone ---
    bad = load_log(bad_log_path)
    timeline = Timeline(bad)
    spans = timeline.txn_spans()
    aborts = [s for s in spans if s[3] in ("abort", "loss")]
    print(f"\n{len(spans)} txn windows in the log, "
          f"{len(aborts)} ended in abort/loss")
    probe = aborts[0][1] if aborts else timeline.final_time // 2
    print(f"machine state at t={probe} (reconstructed, not re-run):")
    print(timeline.state_at(probe).render())

    # -- 4. record the healthy policy on the same spec and diff -------
    print("\n== recording the same shrunk spec under the fixed "
          "policy ==")
    good_result, _ = verify_run(shrunk.spec, record=True)
    good = load_log(good_result.log_bytes)
    print(f"healthy run: ok={good_result.ok}")

    divergence = first_divergence(bad, good)
    if divergence is None:
        raise SystemExit("logs identical (unexpected)")
    print(f"\nfirst divergent event (record #{divergence.index}) -- "
          f"where the inverted policy's schedule departs:")
    print(divergence.render(context=6))

    around = divergence.ours or divergence.theirs
    if around is not None and around.line is not None:
        window = timeline.line_history(around.line,
                                       since=max(0, around.time - 200),
                                       until=around.time + 200)
        print(f"\nwho touched line {around.line:#x} within ±200 cycles "
              f"of the divergence ({len(window)} records):")
        for record in window[:12]:
            print("  " + record.render())

    print("\nreading the diff: up to the divergence both schedules "
          "agree byte-for-byte;")
    print("the first mismatching record is where the inverted beat "
          "first picked a")
    print("different conflict winner -- the bisection anchor for the "
          "bug.")


if __name__ == "__main__":
    main()
