#!/usr/bin/env python3
"""Stability (paper Section 4): what happens when the OS deschedules a
thread in the middle of its critical section?

Under BASE the lock is *held* while the victim sleeps: every other
thread piles up on the spin loop until the victim returns.  Under TLR
the victim never acquired the lock -- its speculation is discarded
(failure atomicity: no partial writes escape) and the lock stays free,
so the other threads sail through: non-blocking execution.

Run:  python examples/stability_demo.py
"""

from repro import SyncScheme, SystemConfig
from repro.harness.machine import Machine
from repro.runtime.program import Workload
from repro.workloads.common import AddressSpace

DESCHEDULE_AT = 600
RESCHEDULE_AT = 60_000
BYSTANDER_SECTIONS = 8


def build(scheme: SyncScheme):
    space = AddressSpace()
    lock, counter = space.alloc_word(), space.alloc_word()
    machine = Machine(SystemConfig(num_cpus=3, scheme=scheme))

    def victim(env):
        def body(env):
            value = yield env.read(counter, pc="v.ld")
            yield env.compute(5000)   # descheduled inside this window
            yield env.write(counter, value + 1, pc="v.st")

        yield from env.critical(lock, body, pc="v")

    def bystander(env):
        def body(env):
            value = yield env.read(counter, pc="b.ld")
            yield env.write(counter, value + 1, pc="b.st")

        for _ in range(BYSTANDER_SECTIONS):
            yield from env.critical(lock, body, pc="b")
            yield env.compute(env.fair_delay())

    workload = Workload(name="stability",
                        threads=[victim, bystander, bystander],
                        meta={"space": space})
    machine.sim.schedule(DESCHEDULE_AT, machine.processors[0].deschedule)
    machine.sim.schedule(RESCHEDULE_AT, machine.processors[0].reschedule)
    return machine, workload, counter


def main() -> None:
    print(f"victim thread descheduled at cycle {DESCHEDULE_AT}, "
          f"rescheduled at {RESCHEDULE_AT}\n")
    for scheme in (SyncScheme.BASE, SyncScheme.TLR):
        machine, workload, counter = build(scheme)
        machine.run_workload(workload, validate=False)
        bystanders_done = max(machine.stats.cpu(1).finish_time,
                              machine.stats.cpu(2).finish_time)
        blocked = bystanders_done > RESCHEDULE_AT
        print(f"{scheme.value}:")
        print(f"  bystanders finished their {2 * BYSTANDER_SECTIONS} "
              f"critical sections at cycle {bystanders_done}")
        print(f"  -> they {'WERE BLOCKED behind' if blocked else 'were NOT blocked by'} "
              f"the sleeping lock holder")
        print(f"  final counter = {machine.store.read(counter)} "
              f"(all {2 * BYSTANDER_SECTIONS + 1} increments intact)\n")

    print("TLR turned the blocking lock into a non-blocking, restartable")
    print("critical section: the victim's partial work was discarded")
    print("(failure atomicity) and replayed after rescheduling.")


if __name__ == "__main__":
    main()
