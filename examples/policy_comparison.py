#!/usr/bin/env python3
"""Contention policies compared: lock-free progress vs livelock.

The paper's central liveness argument (Section 3) is that *timestamp-
ordered conflict deferral* gives lock-free -- in fact starvation-free --
execution: some processor always wins every conflict, and the loser's
eventual win is guaranteed because timestamps age.  The pluggable
contention-policy layer (``repro.policies``) lets you test what happens
when you swap that decision rule out:

* ``timestamp``   -- the paper: oldest transaction wins, losers defer;
* ``nack``        -- the paper's Section 3 alternative: retain by
                     refusing (NACK) instead of deferring;
* ``backoff``     -- Polka-style priorities + exponential backoff
                     (probabilistic progress only);
* ``requester-wins`` -- TSX-like: the incoming request always wins.
                     With a bounded-abort lock fallback this is safe;
                     with the fallback disabled two counter-incrementers
                     can abort each other forever -- a livelock the
                     starvation watchdog flags within a few thousand
                     cycles.

Run:  python examples/policy_comparison.py [num_cpus]
"""

import sys
from dataclasses import replace

from repro import SyncScheme, SystemConfig, run
from repro.harness.machine import Machine
from repro.verify.monitors import InvariantViolation, MonitorSuite
from repro.workloads import single_counter


def compare_policies(num_cpus: int) -> None:
    print(f"single counter, {num_cpus} CPUs, one lock -- "
          f"same program, four conflict-resolution rules\n")
    print(f"{'policy':<18}{'cycles':>9}{'restarts':>10}{'nacks':>8}"
          f"{'deferrals':>11}{'fallbacks':>11}")
    for policy in ("timestamp", "nack", "backoff", "requester-wins"):
        config = SystemConfig(
            num_cpus=num_cpus, scheme=SyncScheme.TLR).with_policy(policy)
        result = run(single_counter(num_cpus, 256), config)
        s = result.stats.summary()
        print(f"{policy:<18}{result.cycles:>9}{s['restarts']:>10}"
              f"{s['nacks_sent']:>8}{s['requests_deferred']:>11}"
              f"{s['lock_fallbacks']:>11}")
    print("\nTimestamp deferral queues losers on the data (no restarts);"
          "\nrequester-wins pays for every conflict with an abort and"
          "\nbounds the damage only by falling back to the real lock.")


def livelock_demo() -> None:
    print("\n--- now disable requester-wins' lock fallback "
          "(fallback_k=None) ---\n")
    config = SystemConfig(num_cpus=4, scheme=SyncScheme.TLR).with_policy(
        "requester-wins", fallback_k=None)
    config = replace(config, max_cycles=3_000_000)
    workload = single_counter(4, total_increments=64, think_cycles=200)

    machine = Machine(config)
    MonitorSuite(machine, fail_fast=True,
                 watchdog_period=2_000, watchdog_patience=5).attach()
    try:
        machine.run_workload(workload)
    except InvariantViolation as exc:
        s = machine.stats.summary()
        print(f"starvation watchdog fired at t={machine.sim.now}:")
        print(f"  {exc}")
        print(f"  restarts so far: {s['restarts']}, "
              f"commits: {s['elisions_committed']}")
        print("\nEvery conflict aborts the current holder, the aborted"
              "\nside retries and aborts the new holder right back: no"
              "\nprocessor ever commits.  The paper's timestamp order"
              "\nmakes this impossible -- the oldest transaction always"
              "\nsurvives, and losers inherit its line when it commits.")
    else:
        raise SystemExit("expected the watchdog to flag a livelock")


def main() -> None:
    num_cpus = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    compare_policies(num_cpus)
    livelock_demo()


if __name__ == "__main__":
    main()
