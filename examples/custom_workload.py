#!/usr/bin/env python3
"""Writing your own lock-based program against the simulator API.

This example builds a tiny bank: accounts in simulated memory, transfer
transactions under one lock, and an auditor that sums balances inside a
critical section.  It shows the full public workflow:

1. allocate simulated memory with :class:`AddressSpace`;
2. write threads as generator coroutines against :class:`ThreadEnv`
   (``env.read`` / ``env.write`` / ``env.compute`` /
   ``env.critical(lock, body)``);
3. wrap them in a :class:`Workload` with a validator;
4. run under any :class:`SyncScheme`.

The invariant -- total money is conserved, and the auditor always sees a
consistent snapshot -- holds under TLR even though the lock is never
acquired, because transactions commit atomically.

Run:  python examples/custom_workload.py
"""

import random

from repro import SyncScheme, SystemConfig, Workload, run
from repro.workloads import AddressSpace

NUM_ACCOUNTS = 8
INITIAL_BALANCE = 100
TRANSFERS_PER_THREAD = 40
NUM_TELLERS = 3


def build_bank() -> Workload:
    space = AddressSpace()
    lock = space.alloc_word()
    accounts = space.alloc_lines(NUM_ACCOUNTS)
    audits: list[int] = []

    def teller(tid: int):
        rng = random.Random(tid)
        moves = [(rng.randrange(NUM_ACCOUNTS), rng.randrange(NUM_ACCOUNTS),
                  rng.randint(1, 20)) for _ in range(TRANSFERS_PER_THREAD)]

        def thread(env):
            if tid == 0:
                # Seed the balances before anyone transfers.
                def seed(env):
                    for account in accounts:
                        yield env.write(account, INITIAL_BALANCE,
                                        pc="bank.seed")
                yield from env.critical(lock, seed, pc="bank.seed")

            for src, dst, amount in moves:
                def body(env, src=src, dst=dst, amount=amount):
                    balance = yield env.read(accounts[src], pc="bank.src")
                    if balance < amount:
                        return  # insufficient funds; nothing to undo
                    yield env.write(accounts[src], balance - amount,
                                    pc="bank.debit")
                    other = yield env.read(accounts[dst], pc="bank.dst")
                    yield env.write(accounts[dst], other + amount,
                                    pc="bank.credit")

                yield from env.critical(lock, body, pc="bank.xfer")
                yield env.compute(env.fair_delay())

        return thread

    def auditor(env):
        yield env.compute(2000)  # let some transfers happen first
        for _ in range(6):
            def audit(env):
                total = 0
                for account in accounts:
                    total += yield env.read(account, pc="bank.audit")
                audits.append(total)

            yield from env.critical(lock, audit, pc="bank.audit")
            yield env.compute(1000)

    def validate(store) -> None:
        total = sum(store.read(a) for a in accounts)
        expected = NUM_ACCOUNTS * INITIAL_BALANCE
        assert total == expected, f"money not conserved: {total}"
        for snapshot in audits:
            assert snapshot in (0, expected), (
                f"auditor saw a torn snapshot: {snapshot}")

    threads = [teller(t) for t in range(NUM_TELLERS)] + [auditor]
    return Workload(name="bank", threads=threads, validate=validate,
                    lock_addrs={lock}, meta={"space": space})


def main() -> None:
    for scheme in (SyncScheme.BASE, SyncScheme.TLR):
        result = run(build_bank(),
                     SystemConfig(num_cpus=NUM_TELLERS + 1, scheme=scheme))
        summary = result.stats.summary()
        print(f"{scheme.value}: {result.cycles} cycles, "
              f"{summary['elisions_committed']} lock-free commits, "
              f"{summary['restarts']} restarts "
              f"-- money conserved, audits consistent")
    print("\nThe auditor's every snapshot summed to the exact total:")
    print("transactions were failure-atomic and serializable under TLR.")


if __name__ == "__main__":
    main()
