#!/usr/bin/env python3
"""Dynamic concurrency in a lock-based queue (the paper's Figure 10).

A doubly-linked queue with Head and Tail pointers lives under ONE lock
-- the natural, correct way to write it, because an enqueuer cannot know
whether it must also touch Head until it has examined Tail (and vice
versa), so fine-grain locking is unusably subtle here.

With the coarse lock, BASE and MCS serialize every operation.  TLR
elides the lock and orders transactions by actual data conflicts:
enqueuers (touching Tail) and dequeuers (touching Head) proceed
concurrently whenever the queue is long enough that Head != Tail --
concurrency no software scheme with this lock structure can reach.

Run:  python examples/concurrent_queue.py [num_cpus] [total_ops]
"""

import sys

from repro import SyncScheme, SystemConfig, run
from repro.workloads import linked_list


def main() -> None:
    num_cpus = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    total_ops = int(sys.argv[2]) if len(sys.argv) > 2 else 1024

    print(f"doubly-linked list: {total_ops} dequeue+enqueue pairs, "
          f"{num_cpus} CPUs, ONE lock\n")
    rows = []
    for scheme in (SyncScheme.BASE, SyncScheme.MCS, SyncScheme.SLE,
                   SyncScheme.TLR):
        config = SystemConfig(num_cpus=num_cpus, scheme=scheme)
        result = run(linked_list(num_cpus, total_ops), config)
        rows.append((scheme, result))

    base_cycles = rows[0][1].cycles
    print(f"{'scheme':<26}{'cycles':>10}{'speedup':>9}{'restarts':>10}")
    for scheme, result in rows:
        print(f"{scheme.value:<26}{result.cycles:>10}"
              f"{base_cycles / result.cycles:>9.2f}"
              f"{result.stats.restarts:>10}")

    tlr = rows[-1][1]
    print(f"\nTLR exploited enqueue/dequeue concurrency the lock hides:")
    print(f"  {tlr.stats.summary()['requests_deferred']} conflicting "
          f"requests were deferred (queued on the data),")
    print(f"  {tlr.stats.summary()['elisions_committed']} critical "
          f"sections committed without the lock ever being written.")
    print("Final queue passed structural validation "
          "(no lost or duplicated nodes).")


if __name__ == "__main__":
    main()
