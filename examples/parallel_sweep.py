#!/usr/bin/env python3
"""Parallel sweep engine tour: fan-out, caching, and failure handling.

Runs the single-counter microbenchmark for every scheme at several
processor counts three ways:

1. serially (``jobs=1``) -- the determinism baseline;
2. in parallel (``jobs=4``) -- same results, bit-for-bit;
3. again with the on-disk cache -- no simulation at all the second time;

then deliberately starves one configuration's cycle budget to show a
livelock degrading into a ``FailedRun`` record instead of killing the
sweep.

Run:  python examples/parallel_sweep.py
"""

import tempfile
import time

from repro import RunSpec, SyncScheme, SystemConfig
from repro.harness.cache import ResultCache
from repro.harness.parallel import FailedRun, execute
from repro.harness.report import telemetry_line

SCHEMES = (SyncScheme.BASE, SyncScheme.SLE, SyncScheme.TLR, SyncScheme.MCS)
PROCS = (2, 4)
OPS = 128


def specs():
    return [RunSpec(workload="single-counter",
                    config=SystemConfig(num_cpus=p, scheme=s,
                                        max_cycles=20_000_000),
                    workload_args={"total_increments": OPS})
            for s in SCHEMES for p in PROCS]


def main() -> None:
    serial, t_serial = execute(specs(), jobs=1)
    print(telemetry_line(t_serial.to_dict()))

    parallel, t_parallel = execute(specs(), jobs=4)
    print(telemetry_line(t_parallel.to_dict()))
    same = [a.to_dict() for a in serial] == [b.to_dict() for b in parallel]
    print(f"jobs=4 identical to jobs=1: {same}\n")

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        execute(specs(), jobs=4, cache=cache)
        start = time.perf_counter()
        _, t_cached = execute(specs(), jobs=4, cache=cache)
        elapsed = time.perf_counter() - start
        print(f"second pass: {t_cached.cache_hits}/{t_cached.total_runs} "
              f"cache hits in {elapsed:.3f}s\n")

    # One spec whose cycle budget cannot possibly suffice: the engine
    # retries it with bumped seeds, then reports a FailedRun while the
    # healthy configurations complete normally.
    bad = RunSpec(workload="single-counter",
                  config=SystemConfig(num_cpus=4, scheme=SyncScheme.BASE,
                                      max_cycles=500),
                  workload_args={"total_increments": OPS})
    outcomes, telemetry = execute(specs() + [bad], jobs=4, retries=1)
    print(telemetry_line(telemetry.to_dict()))
    for outcome in outcomes:
        if isinstance(outcome, FailedRun):
            print(f"degraded gracefully: {outcome.workload} "
                  f"[{outcome.scheme} @{outcome.num_cpus}cpu] -> "
                  f"{outcome.error} after {outcome.attempts} attempts")


if __name__ == "__main__":
    main()
