#!/usr/bin/env python3
"""Watching TLR work: trace the coherence and transaction events.

Attaches a :class:`Tracer` to a 3-processor TLR machine running a
contended counter and prints the interleaving around one conflict:
transactions begin, a conflicting request arrives and is deferred, the
winner commits and services the loser, the loser's data arrives.

Run:  python examples/tracing_demo.py
"""

from repro import SyncScheme, SystemConfig
from repro.harness.machine import Machine
from repro.sim.trace import Tracer
from repro.workloads import single_counter


def main() -> None:
    machine = Machine(SystemConfig(num_cpus=3, scheme=SyncScheme.TLR))
    tracer = Tracer().attach(machine)
    machine.run_workload(single_counter(3, 48))

    counts = tracer.counts()
    print("event histogram:")
    for kind in sorted(counts):
        print(f"  {kind:<14}{counts[kind]}")

    deferrals = tracer.filter(kinds=["defer"])
    if deferrals:
        moment = deferrals[0].time
        print(f"\nfirst deferral happened at cycle {moment}; the "
              f"surrounding interleaving:")
        print(tracer.render(kinds=["txn-begin", "defer", "service",
                                   "txn-commit", "loss", "data"],
                            since=max(0, moment - 150),
                            until=moment + 250))

    print("\nreading the trace: the deferring processor kept exclusive")
    print("ownership until its txn-commit, then 'service' handed the")
    print("line (with post-commit data) to the deferred requester.")


if __name__ == "__main__":
    main()
