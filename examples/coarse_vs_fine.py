#!/usr/bin/env python3
"""Locking granularity under TLR (the paper's Section 6.3 experiment).

Conventional wisdom: fine-grain locks (one per cell) buy concurrency at
the price of programming effort; a single coarse lock is easy but
serializes everything.  TLR changes the trade-off -- serialization is
driven by *data* conflicts, not lock granularity, so the easy coarse
lock performs like (here: better than) the painful fine-grain version:
the lock array disappears from the cache footprint.

Run:  python examples/coarse_vs_fine.py [num_cpus]
"""

import sys

from repro import SyncScheme, SystemConfig, run
from repro.workloads import mp3d


def main() -> None:
    num_cpus = int(sys.argv[1]) if len(sys.argv) > 1 else 16

    print(f"mp3d kernel, {num_cpus} CPUs: per-cell locks vs ONE lock\n")
    cycles = {}
    for coarse in (False, True):
        grain = "coarse (1 lock)" if coarse else "fine (per-cell)"
        for scheme in (SyncScheme.BASE, SyncScheme.TLR, SyncScheme.MCS):
            config = SystemConfig(num_cpus=num_cpus, scheme=scheme)
            result = run(mp3d(num_cpus, coarse=coarse), config)
            cycles[(coarse, scheme)] = result.cycles
            print(f"  {grain:<18}{scheme.value:<26}{result.cycles:>10}")
        print()

    tlr_coarse = cycles[(True, SyncScheme.TLR)]
    print("speedups:")
    print(f"  TLR+coarse over BASE+fine : "
          f"{cycles[(False, SyncScheme.BASE)] / tlr_coarse:.2f}x "
          f"(paper: 2.40x)")
    print(f"  TLR+coarse over TLR+fine  : "
          f"{cycles[(False, SyncScheme.TLR)] / tlr_coarse:.2f}x "
          f"(paper: 1.70x)")
    print(f"  BASE+coarse over BASE+fine: "
          f"{cycles[(False, SyncScheme.BASE)] / cycles[(True, SyncScheme.BASE)]:.2f}x "
          f"(coarse locks are catastrophic without TLR)")


if __name__ == "__main__":
    main()
